"""Diffie-Hellman key agreement over the RFC 3526 MODP groups.

This is the "real" asymmetric backend of the crypto substrate: a genuine
ElGamal-style key-encapsulation mechanism built only on the standard
library (``pow`` with three arguments performs fast modular
exponentiation on big ints). RAC itself never depends on a particular
cipher; see :mod:`repro.crypto.keys` for the backend indirection.

The paper assumes a global active opponent that *cannot invert
encryption* (Section II-A). A 2048-bit MODP group with SHA-256 key
derivation honours that assumption for real; the simulated backend in
:mod:`repro.crypto.keys` only mimics the interface.

For test speed a 512-bit group is also provided (``GROUP_TEST``); it is
obviously not secure and exists only to keep the full test suite fast.
"""

from __future__ import annotations

import hashlib
import secrets
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["DHGroup", "GROUP_2048", "GROUP_TEST", "DHPrivateKey", "DHPublicKey", "generate_keypair"]

#: Fixed-base comb window (bits). Each fixed-base exponentiation costs
#: at most ``exponent_bits / _COMB_WINDOW`` modular multiplications and
#: zero squarings once the per-group table is built.
_COMB_WINDOW = 5

#: (prime, generator, exponent_bits) -> comb table. Key generation and
#: every ephemeral KEM key share the same base g, so the table is built
#: once per group and amortised across the whole population.
_COMB_TABLES: "Dict[Tuple[int, int, int], List[List[int]]]" = {}


def _comb_table(prime: int, generator: int, exponent_bits: int) -> "List[List[int]]":
    key = (prime, generator, exponent_bits)
    table = _COMB_TABLES.get(key)
    if table is None:
        table = []
        base = generator % prime
        for _ in range((exponent_bits + _COMB_WINDOW - 1) // _COMB_WINDOW):
            row = [1, base]
            for _ in range(2, 1 << _COMB_WINDOW):
                row.append(row[-1] * base % prime)
            table.append(row)
            for _ in range(_COMB_WINDOW):
                base = base * base % prime
        _COMB_TABLES[key] = table
    return table


@dataclass(frozen=True)
class DHGroup:
    """A prime-order multiplicative group for Diffie-Hellman."""

    prime: int
    generator: int
    exponent_bits: int

    def random_exponent(self, rng: "secrets.SystemRandom | None" = None) -> int:
        # Rejection-sample instead of the historical ``| 1``, which
        # forced every exponent odd and halved the sampled keyspace for
        # no benefit (the groups here are prime-order safe-prime
        # groups; only the zero exponent is degenerate).
        while True:
            if rng is None:
                exponent = secrets.randbits(self.exponent_bits)
            else:
                exponent = rng.getrandbits(self.exponent_bits)
            if exponent:
                return exponent

    def fixed_base_pow(self, exponent: int) -> int:
        """``generator ** exponent mod prime`` via a fixed-base comb.

        Byte-identical to ``pow(generator, exponent, prime)`` but 3-4x
        faster once the per-group table exists, because the precomputed
        powers eliminate every squaring. Exponents longer than the
        table (never produced by :meth:`random_exponent`) fall back to
        built-in ``pow``.
        """
        if exponent >> self.exponent_bits:
            return pow(self.generator, exponent, self.prime)
        table = _comb_table(self.prime, self.generator, self.exponent_bits)
        prime = self.prime
        mask = (1 << _COMB_WINDOW) - 1
        result = 1
        row = 0
        while exponent:
            digit = exponent & mask
            if digit:
                result = result * table[row][digit] % prime
            exponent >>= _COMB_WINDOW
            row += 1
        return result


# RFC 3526, group 14 (2048-bit MODP).
_P2048 = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

GROUP_2048 = DHGroup(prime=_P2048, generator=2, exponent_bits=256)

# A small safe prime (512 bits) for fast tests. NOT SECURE.
_P512 = int(
    "F52A9F64B58C0F3A5F20BC6A04264A6CB88B72051B63B41B6046AF7CB186E2C1"
    "7C8AEAF5DFB4B8F93BA1E8A9F1577C7393AC0E9BAE7B9AF1BB941B50B91DD6BB",
    16,
)
GROUP_TEST = DHGroup(prime=_P512, generator=5, exponent_bits=160)


@dataclass(frozen=True)
class DHPublicKey:
    """Public half of a DH keypair (``g^x mod p``)."""

    group: DHGroup
    value: int

    def fingerprint(self) -> int:
        digest = hashlib.sha256(self.value.to_bytes((self.value.bit_length() + 7) // 8, "big"))
        return int.from_bytes(digest.digest()[:16], "big")


@dataclass(frozen=True)
class DHPrivateKey:
    """Private half of a DH keypair (the exponent ``x``)."""

    group: DHGroup
    exponent: int

    def public_key(self) -> DHPublicKey:
        return DHPublicKey(self.group, self.group.fixed_base_pow(self.exponent))

    def shared_secret(self, peer: DHPublicKey) -> bytes:
        """Raw DH shared secret ``peer^x mod p``, hashed to 32 bytes."""
        if peer.group.prime != self.group.prime:
            raise ValueError("DH keys belong to different groups")
        secret = pow(peer.value, self.exponent, self.group.prime)
        raw = secret.to_bytes((self.group.prime.bit_length() + 7) // 8, "big")
        return hashlib.sha256(b"rac/dh-kdf" + raw).digest()


def generate_keypair(group: DHGroup = GROUP_2048, seed: "int | None" = None) -> DHPrivateKey:
    """Generate a DH keypair.

    ``seed`` makes generation deterministic, which simulations use to
    build reproducible populations; real deployments leave it ``None``
    so the exponent comes from the OS entropy pool.
    """
    if seed is None:
        exponent = group.random_exponent()
    else:
        # The seeded derivation keeps its historical ``| 1``: fixed-seed
        # populations (and the determinism pins in
        # tests/integration/test_determinism.py) must keep producing the
        # exact same keys. The bias fix applies to the unseeded,
        # security-relevant sampling in :meth:`DHGroup.random_exponent`.
        material = hashlib.sha256(b"rac/dh-seed" + seed.to_bytes(16, "big", signed=True)).digest()
        exponent = int.from_bytes(material, "big") % (1 << group.exponent_bits) | 1
    return DHPrivateKey(group, exponent)
