"""Symmetric authenticated encryption from the standard library.

A SHA-256 counter-mode keystream provides the cipher and HMAC-SHA256
provides integrity. Together with the DH KEM in :mod:`repro.crypto.dh`
this yields an authenticated hybrid public-key scheme, which is all the
onion layers of RAC need: a relay must be able to *detect* whether it
successfully deciphered a layer (the paper's per-layer "flag"), which is
exactly what the MAC check gives us.
"""

from __future__ import annotations

import hashlib
import hmac
import struct

__all__ = ["keystream_xor", "mac", "verify_mac", "encrypt", "decrypt", "AuthenticationError", "MAC_LEN"]

MAC_LEN = 16
_BLOCK = 32  # SHA-256 output size


class AuthenticationError(Exception):
    """Raised when a MAC check fails (layer not addressed to this key)."""


def keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA256-CTR keystream; its own inverse."""
    out = bytearray(len(data))
    offset = 0
    counter = 0
    while offset < len(data):
        block = hashlib.sha256(key + nonce + struct.pack(">Q", counter)).digest()
        chunk = data[offset : offset + _BLOCK]
        for i, byte in enumerate(chunk):
            out[offset + i] = byte ^ block[i]
        offset += _BLOCK
        counter += 1
    return bytes(out)


def mac(key: bytes, data: bytes) -> bytes:
    """Truncated HMAC-SHA256 tag over ``data``."""
    return hmac.new(key, data, hashlib.sha256).digest()[:MAC_LEN]


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time comparison of the expected tag against ``tag``."""
    return hmac.compare_digest(mac(key, data), tag)


def _split_key(key: bytes) -> "tuple[bytes, bytes]":
    enc = hashlib.sha256(b"rac/enc" + key).digest()
    auth = hashlib.sha256(b"rac/auth" + key).digest()
    return enc, auth


def encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC; the tag is prepended to the ciphertext."""
    enc_key, auth_key = _split_key(key)
    ciphertext = keystream_xor(enc_key, nonce, plaintext)
    return mac(auth_key, nonce + ciphertext) + ciphertext


def decrypt(key: bytes, nonce: bytes, blob: bytes) -> bytes:
    """Check the tag and decrypt. Raises :class:`AuthenticationError`."""
    if len(blob) < MAC_LEN:
        raise AuthenticationError("ciphertext too short")
    tag, ciphertext = blob[:MAC_LEN], blob[MAC_LEN:]
    enc_key, auth_key = _split_key(key)
    if not verify_mac(auth_key, nonce + ciphertext, tag):
        raise AuthenticationError("MAC mismatch")
    return keystream_xor(enc_key, nonce, ciphertext)
