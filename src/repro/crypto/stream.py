"""Symmetric authenticated encryption from the standard library.

A SHA-256 counter-mode keystream provides the cipher and HMAC-SHA256
provides integrity. Together with the DH KEM in :mod:`repro.crypto.dh`
this yields an authenticated hybrid public-key scheme, which is all the
onion layers of RAC need: a relay must be able to *detect* whether it
successfully deciphered a layer (the paper's per-layer "flag"), which is
exactly what the MAC check gives us.
"""

from __future__ import annotations

import functools
import hashlib
import hmac
import struct

__all__ = ["keystream_xor", "mac", "verify_mac", "encrypt", "decrypt", "AuthenticationError", "MAC_LEN"]

MAC_LEN = 16
_BLOCK = 32  # SHA-256 output size
_PACK_COUNTER = struct.Struct(">Q").pack

#: Packed big-endian counters, extended lazily; a 10 kB message needs
#: 313 of them per keystream, so re-packing per block adds up.
_COUNTER_PACKS: "list[bytes]" = [_PACK_COUNTER(i) for i in range(512)]


def keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """XOR ``data`` with a SHA256-CTR keystream; its own inverse.

    The keystream block for counter ``c`` is ``SHA256(key || nonce ||
    c)``, exactly as in the original per-byte implementation — but the
    blocks are generated from a shared midstate (one hash of ``key ||
    nonce``, copied per block) and the XOR happens in a single big-int
    operation instead of a Python loop, which is where simulation time
    used to go: every trial-peel of every broadcast runs through here.
    """
    size = len(data)
    if size == 0:
        return b""
    nblocks = (size + _BLOCK - 1) // _BLOCK
    packs = _COUNTER_PACKS
    while nblocks > len(packs):
        packs.append(_PACK_COUNTER(len(packs)))
    base = hashlib.sha256(key + nonce)
    copy = base.copy
    stream = b"".join([_ctr_block(copy(), pack) for pack in packs[:nblocks]])[:size]
    return (int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")).to_bytes(size, "big")


def _ctr_block(block, pack: bytes) -> bytes:
    block.update(pack)
    return block.digest()


class AuthenticationError(Exception):
    """Raised when a MAC check fails (layer not addressed to this key)."""


def mac(key: bytes, data: bytes) -> bytes:
    """Truncated HMAC-SHA256 tag over ``data``."""
    return hmac.new(key, data, hashlib.sha256).digest()[:MAC_LEN]


def verify_mac(key: bytes, data: bytes, tag: bytes) -> bool:
    """Constant-time comparison of the expected tag against ``tag``."""
    return hmac.compare_digest(mac(key, data), tag)


@functools.lru_cache(maxsize=4096)
def _split_key(key: bytes) -> "tuple[bytes, bytes]":
    # Cached: every seal/open of a layer re-derives the same two
    # subkeys, and a simulation touches the same node keys constantly.
    # The derivation is a pure function of ``key``, so caching cannot
    # change any output byte.
    enc = hashlib.sha256(b"rac/enc" + key).digest()
    auth = hashlib.sha256(b"rac/auth" + key).digest()
    return enc, auth


def encrypt(key: bytes, nonce: bytes, plaintext: bytes) -> bytes:
    """Encrypt-then-MAC; the tag is prepended to the ciphertext."""
    enc_key, auth_key = _split_key(key)
    ciphertext = keystream_xor(enc_key, nonce, plaintext)
    return mac(auth_key, nonce + ciphertext) + ciphertext


def decrypt(key: bytes, nonce: bytes, blob: bytes) -> bytes:
    """Check the tag and decrypt. Raises :class:`AuthenticationError`."""
    if len(blob) < MAC_LEN:
        raise AuthenticationError("ciphertext too short")
    tag, ciphertext = blob[:MAC_LEN], blob[MAC_LEN:]
    enc_key, auth_key = _split_key(key)
    if not verify_mac(auth_key, nonce + ciphertext, tag):
        raise AuthenticationError("MAC mismatch")
    return keystream_xor(enc_key, nonce, ciphertext)
