"""Accountable anonymous shuffle (Dissent v1, Corrigan-Gibbs & Ford).

RAC reuses this protocol verbatim for the periodic anonymous
dissemination of relay blacklists (Section IV-C: *"we use the shuffle
protocol of Dissent v1 which allows permuting a set of fixed-length
messages and broadcasting the set to all members with cryptographically
strong anonymity"*), and the Dissent v1 baseline builds its messaging
round on it.

Protocol outline (one run, n members, fixed-length messages):

1.  Every member generates two per-run keypairs: an *outer* pair and an
    *inner* pair, and publishes both public keys.
2.  Member ``i`` wraps its message in n inner layers (innermost sealed
    to member n-1's inner key, outermost to member 0's), producing
    ``C'_i``, then in n outer layers the same way, producing ``C_i``.
3.  Members take turns in index order: member ``k`` strips its outer
    layer from every item, applies a secret random permutation, and
    hands the batch to member ``k+1``.
4.  The final batch (the permuted ``C'_i``) is broadcast. Every member
    checks that its own ``C'_i`` survived (the *go/no-go* vote).
5.  On unanimous GO, every member reveals its inner private key and the
    batch is peeled to the plaintext messages — in an order no member
    can link to senders.
6.  On NO-GO, messages are discarded, every member reveals its *outer*
    private key and its permutation, the run is re-executed
    deterministically, and the first member whose recorded output does
    not match the re-execution is blamed. Inner keys are never revealed
    on failure, so unsent messages stay secret.

Accountability is what makes the shuffle freerider-proof: Lemma 4 of
the paper leans on it ("the anonymous blacklist broadcasting protocol
we rely on is accountable").
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .keys import AuthenticationError, KeyPair, seal

__all__ = ["ShuffleParticipant", "DishonestParticipant", "ShuffleResult", "run_shuffle"]


@dataclass
class ShuffleResult:
    """Outcome of one accountable shuffle run."""

    success: bool
    #: Plaintext messages in shuffled order (``None`` on failure).
    messages: Optional[List[bytes]]
    #: Indices of members blamed by the accountability phase.
    blamed: List[int] = field(default_factory=list)
    #: Total messages transmitted (for cost accounting).
    messages_sent: int = 0


class ShuffleParticipant:
    """An honest member of one shuffle run."""

    def __init__(self, index: int, backend: str = "sim", rng: "random.Random | None" = None) -> None:
        self.index = index
        self.rng = rng if rng is not None else random.Random()
        seed_base = self.rng.getrandbits(62)
        self.outer = KeyPair.generate(backend, seed=seed_base * 4 + 1)
        self.inner = KeyPair.generate(backend, seed=seed_base * 4 + 2)
        self.permutation: Optional[List[int]] = None
        self._recorded_output: Optional[List[bytes]] = None

    # -- step 2: submission -------------------------------------------------
    def build_ciphertext(
        self,
        message: bytes,
        outer_keys: Sequence[KeyPair],
        inner_keys: Sequence[KeyPair],
    ) -> bytes:
        """Wrap ``message`` in all inner then all outer layers."""
        blob = message
        for holder in reversed(inner_keys):
            blob = seal(holder.public, blob, seed=self.rng.getrandbits(62))
        for holder in reversed(outer_keys):
            blob = seal(holder.public, blob, seed=self.rng.getrandbits(62))
        return blob

    # -- step 3: one anonymization hop --------------------------------------
    def shuffle_step(self, items: List[bytes]) -> List[bytes]:
        """Strip this member's outer layer from every item and permute."""
        stripped = [self._strip(item) for item in items]
        self.permutation = list(range(len(stripped)))
        self.rng.shuffle(self.permutation)
        output = [stripped[j] for j in self.permutation]
        self._recorded_output = list(output)
        return output

    def _strip(self, item: bytes) -> bytes:
        return self.outer.unseal(item)

    # -- step 6: blame ------------------------------------------------------
    def reveal_for_blame(self) -> "tuple[KeyPair, Optional[List[int]], Optional[List[bytes]]]":
        """Reveal the outer key, permutation and recorded output."""
        return self.outer, self.permutation, self._recorded_output


class DishonestParticipant(ShuffleParticipant):
    """A member that misbehaves during its shuffle step.

    Modes: ``drop`` removes one item, ``duplicate`` repeats one,
    ``corrupt`` flips bytes of one, ``replace`` substitutes garbage.
    All four must be caught by the accountability phase.
    """

    MODES = ("drop", "duplicate", "corrupt", "replace")

    def __init__(self, index: int, mode: str, backend: str = "sim", rng=None) -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown misbehaviour mode: {mode!r}")
        super().__init__(index, backend=backend, rng=rng)
        self.mode = mode

    def shuffle_step(self, items: List[bytes]) -> List[bytes]:
        output = super().shuffle_step(items)
        victim = self.rng.randrange(len(output)) if output else 0
        if self.mode == "drop" and output:
            del output[victim]
        elif self.mode == "duplicate" and output:
            output.append(output[victim])
        elif self.mode == "corrupt" and output:
            tampered = bytearray(output[victim])
            tampered[0] ^= 0xFF
            output[victim] = bytes(tampered)
        elif self.mode == "replace" and output:
            output[victim] = b"\x00" * len(output[victim])
        # Record the *honest* output but send the tampered one: a liar
        # hides its tracks, and blame must still catch it.
        return output


def run_shuffle(
    participants: Sequence[ShuffleParticipant],
    messages: Sequence[bytes],
) -> ShuffleResult:
    """Execute one accountable shuffle run.

    ``messages[i]`` is member ``i``'s fixed-length message. Returns the
    shuffled plaintexts on success, or the blamed member indices on
    failure. All messages must share one length (the paper pads
    blacklists to a fixed size for exactly this reason).
    """
    n = len(participants)
    if n == 0:
        raise ValueError("a shuffle needs at least one member")
    if len(messages) != n:
        raise ValueError("one message per member is required")
    lengths = {len(m) for m in messages}
    if len(lengths) > 1:
        raise ValueError(f"messages must be fixed-length, got lengths {sorted(lengths)}")

    outer_keys = [p.outer for p in participants]
    inner_keys = [p.inner for p in participants]
    messages_sent = 0

    # Step 2: every member submits its onion.
    batch: List[bytes] = [
        p.build_ciphertext(m, outer_keys, inner_keys) for p, m in zip(participants, messages)
    ]
    messages_sent += n  # submissions

    # Step 3: sequential anonymization.
    inputs_per_member: List[List[bytes]] = []
    sent_per_member: List[List[bytes]] = []
    current = list(batch)
    failed_member: Optional[int] = None
    for p in participants:
        inputs_per_member.append(list(current))
        try:
            current = p.shuffle_step(current)
        except AuthenticationError:
            # A previous member handed us garbage we cannot strip.
            failed_member = p.index
            sent_per_member.append([])
            break
        sent_per_member.append(list(current))
        messages_sent += len(current)

    go = failed_member is None
    if go:
        # Step 4: go/no-go. Each member strips the remaining inner layers
        # of every final item with *its own* inner key unavailable yet, so
        # instead each checks that exactly one final item opens correctly
        # through the full inner-key sequence down to its message. We
        # perform the equivalent global check: decrypt the batch with all
        # inner keys and verify it is a permutation of the submissions.
        try:
            plaintexts = _peel_inner(current, participants)
        except AuthenticationError:
            go = False
            plaintexts = None
        if go and sorted(plaintexts) != sorted(messages):
            go = False
        if go:
            messages_sent += n  # inner-key reveals
            return ShuffleResult(True, plaintexts, [], messages_sent)

    # Step 6: blame via deterministic re-execution.
    blamed = _blame(participants, inputs_per_member, sent_per_member, failed_member)
    messages_sent += n  # outer-key reveals
    return ShuffleResult(False, None, blamed, messages_sent)


def _peel_inner(items: List[bytes], participants: Sequence[ShuffleParticipant]) -> List[bytes]:
    plaintexts = []
    for item in items:
        blob = item
        for p in participants:
            blob = p.inner.unseal(blob)
        plaintexts.append(blob)
    return plaintexts


def _blame(
    participants: Sequence[ShuffleParticipant],
    inputs_per_member: List[List[bytes]],
    sent_per_member: List[List[bytes]],
    failed_member: Optional[int],
) -> List[int]:
    """Re-execute every member's step from its revealed outer key.

    Member ``k`` is blamed if the multiset of its actual output differs
    from honestly stripping its recorded input (permutation order is a
    member's free choice, so comparison ignores order).
    """
    for k, p in enumerate(participants):
        if k >= len(inputs_per_member):
            break
        outer, _permutation, _recorded = p.reveal_for_blame()
        expected: List[bytes] = []
        corrupt_input = False
        for item in inputs_per_member[k]:
            try:
                expected.append(outer.unseal(item))
            except AuthenticationError:
                # Input already corrupted by an earlier member; the scan
                # would have blamed that member first, but guard anyway.
                corrupt_input = True
                break
        if corrupt_input:
            continue
        actual = sent_per_member[k] if k < len(sent_per_member) else []
        if sorted(actual) != sorted(expected):
            return [k]
    if failed_member is not None and failed_member > 0:
        # The member before the failure point produced unstrippable data.
        return [failed_member - 1]
    return []
