"""Key material for RAC nodes.

Every RAC node owns **two** private/public key pairs (Section IV-C):

* the *ID keys*, linked to the node identifier, used for the onion
  layers addressed to relays;
* the *pseudonym keys*, unlinkable to the node identifier, used to
  encrypt a message for its final destination. How nodes learn each
  other's public pseudonym keys is application-dependent (the paper's
  example is an anonymous publish-subscribe system; see
  ``examples/anonymous_pubsub.py``).

Two interchangeable backends provide the asymmetric primitive:

``dh``
    A genuine ElGamal-style hybrid scheme over a MODP group
    (:mod:`repro.crypto.dh` + :mod:`repro.crypto.stream`). Slow but
    real; the global opponent genuinely cannot invert it.

``sim``
    A *simulated* sealed box: same interface, same success/failure
    behaviour (unsealing succeeds iff the matching private key is
    used), but the payload is only obfuscated, not protected. Orders of
    magnitude faster; used for large-population simulations where the
    experiment measures message flow, not confidentiality. This
    substitution is recorded in DESIGN.md section 2.

Protocol code never branches on the backend: it calls
:func:`KeyPair.generate`, :func:`seal` and :meth:`KeyPair.unseal` only.
"""

from __future__ import annotations

import functools
import hashlib
import secrets
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional, Tuple

from . import dh as _dh
from . import stream as _stream
from .stream import AuthenticationError

__all__ = ["PublicKey", "KeyPair", "seal", "sealed_overhead", "clear_kem_cache", "AuthenticationError"]

_SIM_KEYID_LEN = 16
_SIM_NONCE_LEN = 16
_TAG_SIM = b"S"
_TAG_DH = b"D"

# ---------------------------------------------------------------------------
# KEM cache
#
# The DH shared secret is a pure function of (ephemeral public key,
# recipient keypair): the sender computes eph^priv from one side, the
# opener recipient_pub^eph from the other, and DH agreement makes the
# bytes identical. Every RAC broadcast is trial-peeled by *all* g group
# members, so a relay that re-sees an onion layer — or a node whose
# sealed blob circulates several rings — would otherwise repeat a full
# modular exponentiation per sighting. The cache is bounded LRU and
# keyed on (ephemeral-pub-bytes, recipient key id); entries for keys
# that fail to open are cached too (the failed MAC check is what makes
# "not for me" cheap the second time).
# ---------------------------------------------------------------------------

_KEM_CACHE: "OrderedDict[Tuple[bytes, int], bytes]" = OrderedDict()
_KEM_CACHE_MAX = 4096


def _kem_cache_put(eph_bytes: bytes, recipient_id: int, shared: bytes) -> None:
    cache = _KEM_CACHE
    cache[(eph_bytes, recipient_id)] = shared
    if len(cache) > _KEM_CACHE_MAX:
        cache.popitem(last=False)


def clear_kem_cache() -> None:
    """Drop every cached KEM shared secret (tests and benchmarks)."""
    _KEM_CACHE.clear()


@dataclass(frozen=True, slots=True)
class PublicKey:
    """A public key: a stable 128-bit ``key_id`` plus backend material."""

    backend: str
    key_id: int
    dh_value: Optional[int] = None
    dh_group: Optional[_dh.DHGroup] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.backend not in ("sim", "dh"):
            raise ValueError(f"unknown key backend: {self.backend!r}")
        if self.backend == "dh" and (self.dh_value is None or self.dh_group is None):
            raise ValueError("dh-backend public key requires dh_value and dh_group")

    def __hash__(self) -> int:
        return hash((self.backend, self.key_id))


class KeyPair:
    """A private/public key pair under one of the two backends."""

    __slots__ = ("backend", "public", "_private")

    def __init__(self, backend: str, public: PublicKey, _private) -> None:
        self.backend = backend
        self.public = public
        self._private = _private
        if backend == "dh" and not isinstance(_private, _dh.DHPrivateKey):
            raise TypeError("dh backend requires a DHPrivateKey")

    @classmethod
    def generate(
        cls,
        backend: str = "sim",
        seed: "int | None" = None,
        group: _dh.DHGroup = _dh.GROUP_TEST,
    ) -> "KeyPair":
        """Generate a fresh keypair.

        ``seed`` gives deterministic keys for reproducible simulations.
        The ``dh`` backend defaults to the small test group; pass
        ``group=repro.crypto.dh.GROUP_2048`` for real-strength keys.
        """
        if backend == "sim":
            if seed is None:
                secret = secrets.token_bytes(32)
            else:
                secret = hashlib.sha256(b"rac/sim-key" + seed.to_bytes(16, "big", signed=True)).digest()
            key_id = int.from_bytes(
                hashlib.sha256(b"rac/sim-keyid" + secret).digest()[:_SIM_KEYID_LEN], "big"
            )
            return cls("sim", PublicKey("sim", key_id), secret)
        if backend == "dh":
            private = _dh.generate_keypair(group, seed=seed)
            pub = private.public_key()
            return cls(
                "dh",
                PublicKey("dh", pub.fingerprint(), dh_value=pub.value, dh_group=group),
                private,
            )
        raise ValueError(f"unknown key backend: {backend!r}")

    def unseal(self, blob: bytes) -> bytes:
        """Open a sealed box. Raises :class:`AuthenticationError` if the
        box was not sealed to this key (this is the paper's per-layer
        deciphering "flag": a failed unseal means *not for me*)."""
        if not blob:
            raise AuthenticationError("empty sealed box")
        tag, body = blob[:1], blob[1:]
        if tag == _TAG_SIM:
            return self._unseal_sim(body)
        if tag == _TAG_DH:
            return self._unseal_dh(body)
        raise AuthenticationError("unknown sealed-box format")

    def _unseal_sim(self, body: bytes) -> bytes:
        if self.backend != "sim":
            raise AuthenticationError("sealed box uses the sim backend")
        if len(body) < _SIM_KEYID_LEN + _SIM_NONCE_LEN:
            raise AuthenticationError("sealed box too short")
        key_id = int.from_bytes(body[:_SIM_KEYID_LEN], "big")
        if key_id != self.public.key_id:
            raise AuthenticationError("sealed box addressed to a different key")
        nonce = body[_SIM_KEYID_LEN : _SIM_KEYID_LEN + _SIM_NONCE_LEN]
        sym = _sim_symmetric_key(key_id)
        return _stream.decrypt(sym, nonce, body[_SIM_KEYID_LEN + _SIM_NONCE_LEN :])

    def _unseal_dh(self, body: bytes) -> bytes:
        if self.backend != "dh":
            raise AuthenticationError("sealed box uses the dh backend")
        group = self._private.group
        pub_len = (group.prime.bit_length() + 7) // 8
        if len(body) < pub_len:
            raise AuthenticationError("sealed box too short")
        eph_bytes = body[:pub_len]
        cache_key = (eph_bytes, self.public.key_id)
        shared = _KEM_CACHE.get(cache_key)
        if shared is None:
            eph_pub = _dh.DHPublicKey(group, int.from_bytes(eph_bytes, "big"))
            shared = self._private.shared_secret(eph_pub)
            _kem_cache_put(eph_bytes, self.public.key_id, shared)
        else:
            _KEM_CACHE.move_to_end(cache_key)
        nonce = hashlib.sha256(b"rac/seal-nonce" + eph_bytes).digest()[:16]
        return _stream.decrypt(shared, nonce, body[pub_len:])


@functools.lru_cache(maxsize=8192)
def _sim_symmetric_key(key_id: int) -> bytes:
    # The sim backend derives the symmetric key from the *public* key id:
    # interface-faithful (wrong key -> AuthenticationError) but knowingly
    # not confidential. See the module docstring. Cached: pure function
    # of the key id, recomputed on every seal/unseal otherwise.
    return hashlib.sha256(b"rac/sim-sym" + key_id.to_bytes(_SIM_KEYID_LEN, "big")).digest()


def seal(public: PublicKey, plaintext: bytes, seed: "int | None" = None) -> bytes:
    """Seal ``plaintext`` so that only the owner of ``public`` opens it.

    ``seed`` derandomizes the ephemeral material (nonce / ephemeral DH
    key) for reproducible simulations.
    """
    if public.backend == "sim":
        if seed is None:
            nonce = secrets.token_bytes(_SIM_NONCE_LEN)
        else:
            nonce = hashlib.sha256(b"rac/sim-nonce" + seed.to_bytes(16, "big", signed=True)).digest()[
                :_SIM_NONCE_LEN
            ]
        sym = _sim_symmetric_key(public.key_id)
        body = public.key_id.to_bytes(_SIM_KEYID_LEN, "big") + nonce
        return _TAG_SIM + body + _stream.encrypt(sym, nonce, plaintext)
    if public.backend == "dh":
        group = public.dh_group
        assert group is not None and public.dh_value is not None
        eph = _dh.generate_keypair(group, seed=seed)
        pub_len = (group.prime.bit_length() + 7) // 8
        eph_bytes = eph.public_key().value.to_bytes(pub_len, "big")
        cache_key = (eph_bytes, public.key_id)
        shared = _KEM_CACHE.get(cache_key)
        if shared is None:
            recipient = _dh.DHPublicKey(group, public.dh_value)
            shared = eph.shared_secret(recipient)
            _kem_cache_put(eph_bytes, public.key_id, shared)
        else:
            _KEM_CACHE.move_to_end(cache_key)
        nonce = hashlib.sha256(b"rac/seal-nonce" + eph_bytes).digest()[:16]
        return _TAG_DH + eph_bytes + _stream.encrypt(shared, nonce, plaintext)
    raise ValueError(f"unknown key backend: {public.backend!r}")


def sealed_overhead(public: PublicKey) -> int:
    """Bytes added by one :func:`seal` layer (needed by onion padding)."""
    if public.backend == "sim":
        return 1 + _SIM_KEYID_LEN + _SIM_NONCE_LEN + _stream.MAC_LEN
    assert public.dh_group is not None
    pub_len = (public.dh_group.prime.bit_length() + 7) // 8
    return 1 + pub_len + _stream.MAC_LEN
