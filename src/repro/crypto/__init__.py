"""Cryptographic substrate for the RAC reproduction.

Sub-modules:

* :mod:`repro.crypto.hashes` — one-way functions ``f``/``g`` (group
  puzzle), ring-position hashing, message identifiers;
* :mod:`repro.crypto.dh` — Diffie-Hellman over RFC 3526 MODP groups;
* :mod:`repro.crypto.stream` — SHA256-CTR cipher + HMAC;
* :mod:`repro.crypto.keys` — the two-backend (``dh`` real / ``sim``
  fast) keypair and sealed-box API the protocol code uses;
* :mod:`repro.crypto.shuffle` — the Dissent v1 accountable shuffle.
"""

from .hashes import message_id, oneway_f, oneway_g, ring_position, sha256_int, truncated_bits
from .keys import AuthenticationError, KeyPair, PublicKey, seal, sealed_overhead
from .shuffle import DishonestParticipant, ShuffleParticipant, ShuffleResult, run_shuffle

__all__ = [
    "message_id",
    "oneway_f",
    "oneway_g",
    "ring_position",
    "sha256_int",
    "truncated_bits",
    "AuthenticationError",
    "KeyPair",
    "PublicKey",
    "seal",
    "sealed_overhead",
    "DishonestParticipant",
    "ShuffleParticipant",
    "ShuffleResult",
    "run_shuffle",
]
