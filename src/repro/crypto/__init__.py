"""Cryptographic substrate for the RAC reproduction.

Sub-modules:

* :mod:`repro.crypto.hashes` — one-way functions ``f``/``g`` (group
  puzzle), ring-position hashing, message identifiers;
* :mod:`repro.crypto.dh` — Diffie-Hellman over RFC 3526 MODP groups;
* :mod:`repro.crypto.stream` — SHA256-CTR cipher + HMAC;
* :mod:`repro.crypto.keys` — the two-backend (``dh`` real / ``sim``
  fast) keypair and sealed-box API the protocol code uses;
* :mod:`repro.crypto.shuffle` — the Dissent v1 accountable shuffle.
"""

from .hashes import message_id, oneway_f, oneway_g, ring_position, sha256_int, truncated_bits
from .keys import AuthenticationError, KeyPair, PublicKey, clear_kem_cache, seal, sealed_overhead
from .shuffle import DishonestParticipant, ShuffleParticipant, ShuffleResult, run_shuffle
from . import keys as _keys
from . import stream as _stream


def clear_process_caches() -> None:
    """Reset every module-level crypto cache in this process.

    The KEM shared-secret LRU and the ``lru_cache``'d derivations
    (:func:`repro.crypto.stream._split_key`,
    :func:`repro.crypto.keys._sim_symmetric_key`,
    :func:`repro.crypto.hashes.ring_position`) are pure-function caches,
    so they never change results — but a sweep worker that executes many
    runs back to back would (a) grow them without bound across runs and
    (b) inherit a fork-parent's warm cache, making per-run memory and
    timing depend on sibling runs. Worker-run boundaries call this to
    keep every run cold-started and memory-bounded.
    """
    clear_kem_cache()
    _stream._split_key.cache_clear()
    _keys._sim_symmetric_key.cache_clear()
    ring_position.cache_clear()


__all__ = [
    "clear_kem_cache",
    "clear_process_caches",
    "message_id",
    "oneway_f",
    "oneway_g",
    "ring_position",
    "sha256_int",
    "truncated_bits",
    "AuthenticationError",
    "KeyPair",
    "PublicKey",
    "seal",
    "sealed_overhead",
    "DishonestParticipant",
    "ShuffleParticipant",
    "ShuffleResult",
    "run_shuffle",
]
