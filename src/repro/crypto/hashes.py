"""One-way hash utilities used throughout the RAC protocol.

The paper relies on one-way functions in three places:

* the Herbivore-style group-assignment puzzle (Section IV-C) uses two
  one-way functions ``f`` and ``g``: a joining node with ID public key
  ``K`` must find a vector ``y != K`` such that the least significant
  ``mk`` bits of ``f(K)`` equal those of ``f(y)``; its node identifier
  is then ``g(K, y)``;
* the Fireflies-style ring placement (Section IV-C) positions a node on
  ring ``i`` at ``hash((ID, i))``;
* message identifiers and duplicate suppression in the ring broadcast.

All functions here are deterministic, stdlib-only (SHA-256) and return
unsigned integers so they can be compared and sorted without caring
about byte order.
"""

from __future__ import annotations

import functools
import hashlib
import struct

__all__ = [
    "sha256_int",
    "oneway_f",
    "oneway_g",
    "ring_position",
    "truncated_bits",
    "message_id",
]

#: Number of bits retained by :func:`sha256_int`. 128 bits are plenty for
#: collision resistance at simulation scale while keeping ints small.
HASH_BITS = 128

_HASH_MASK = (1 << HASH_BITS) - 1


def _digest(*parts: bytes) -> bytes:
    hasher = hashlib.sha256()
    for part in parts:
        # Length-prefix each part so ("ab", "c") != ("a", "bc").
        hasher.update(struct.pack(">I", len(part)))
        hasher.update(part)
    return hasher.digest()


def _to_bytes(value: "bytes | str | int") -> bytes:
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        if value < 0:
            raise ValueError("cannot hash negative integers")
        length = max(1, (value.bit_length() + 7) // 8)
        return value.to_bytes(length, "big")
    raise TypeError(f"unhashable input type: {type(value).__name__}")


def sha256_int(*parts: "bytes | str | int") -> int:
    """Hash the parts and return the result as a ``HASH_BITS``-bit int."""
    data = _digest(*[_to_bytes(p) for p in parts])
    return int.from_bytes(data, "big") & _HASH_MASK


def oneway_f(value: "bytes | str | int") -> int:
    """The paper's one-way function ``f`` (group-assignment puzzle)."""
    return sha256_int(b"rac/oneway-f", _to_bytes(value))


def oneway_g(key: "bytes | str | int", vector: "bytes | str | int") -> int:
    """The paper's one-way function ``g``; ``g(K, y)`` is the node ID."""
    return sha256_int(b"rac/oneway-g", _to_bytes(key), _to_bytes(vector))


def truncated_bits(value: int, bits: int) -> int:
    """Return the ``bits`` least-significant bits of ``value``.

    Used by the group-assignment puzzle: the puzzle is solved when
    ``truncated_bits(f(K), mk) == truncated_bits(f(y), mk)``.
    """
    if bits < 0:
        raise ValueError("bit count must be non-negative")
    return value & ((1 << bits) - 1)


@functools.lru_cache(maxsize=1 << 18)
def ring_position(node_id: int, ring_index: int) -> int:
    """Position of a node on ring ``ring_index``.

    Follows Fireflies: the position of a node on the i-th ring is the
    hash of the couple (ID, i). Positions are compared as unsigned
    integers; ties are broken by node id (collisions are astronomically
    unlikely with 128-bit hashes but the overlay handles them anyway).

    Cached (bounded LRU): a position is a pure function of its inputs,
    and the overlay re-derives the same handful of positions on every
    successor/predecessor lookup of the forwarding hot path.
    """
    if ring_index < 0:
        raise ValueError("ring index must be non-negative")
    return sha256_int(b"rac/ring-position", node_id, ring_index)


def message_id(payload: bytes) -> int:
    """Stable identifier of a broadcast message (duplicate suppression)."""
    return sha256_int(b"rac/message-id", payload)
