"""Unit tests for RacSystem's plumbing (env interface, eviction, seeds)."""

import pytest

from repro.core.config import RacConfig
from repro.core.messages import channel_domain, group_domain
from repro.core.system import RacSystem


def config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.0,
        predecessor_timeout=0.5,
        rate_window=1.0,
        blacklist_period=0.0,
        puzzle_bits=2,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestBootstrap:
    def test_creates_requested_population(self):
        system = RacSystem(config(), seed=1)
        nodes = system.bootstrap(10)
        assert len(nodes) == len(set(nodes)) == 10
        assert set(system.directory.node_ids) == set(nodes)

    def test_each_node_has_keys_and_meter(self):
        system = RacSystem(config(), seed=2)
        nodes = system.bootstrap(5)
        for node_id in nodes:
            assert node_id in system.pseudonym_keys
            assert node_id in system.node_meters
            assert system.network.attached(node_id)

    def test_behaviors_assigned_by_index(self):
        from repro.freeride.strategies import NoNoise

        lazy = NoNoise()
        system = RacSystem(config(), seed=3)
        nodes = system.bootstrap(5, behaviors={2: lazy})
        assert system.nodes[nodes[2]].behavior is lazy
        assert system.nodes[nodes[0]].behavior is not lazy


class TestDeterminism:
    def test_same_seed_same_population(self):
        a = RacSystem(config(), seed=42)
        b = RacSystem(config(), seed=42)
        assert a.bootstrap(8) == b.bootstrap(8)

    def test_same_seed_same_simulation(self):
        results = []
        for _ in range(2):
            system = RacSystem(config(), seed=43)
            nodes = system.bootstrap(8)
            system.run(1.0)
            system.send(nodes[0], nodes[4], b"replay me")
            system.run(3.0)
            results.append(
                (system.sim.events_processed, tuple(sorted(system.stats.as_dict().items())))
            )
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        a = RacSystem(config(), seed=44)
        b = RacSystem(config(), seed=45)
        assert a.bootstrap(8) != b.bootstrap(8)


class TestDomainViews:
    def test_group_view(self):
        system = RacSystem(config(), seed=5)
        nodes = system.bootstrap(6)
        gid = system.group_of(nodes[0])
        view = system.domain_view(group_domain(gid))
        assert set(nodes) == view.members

    def test_unknown_group_is_none(self):
        system = RacSystem(config(), seed=6)
        system.bootstrap(4)
        assert system.domain_view(group_domain(999)) is None

    def test_unknown_channel_is_none(self):
        system = RacSystem(config(), seed=7)
        system.bootstrap(4)
        assert system.domain_view(channel_domain(1, 999)) is None

    def test_unknown_domain_kind_rejected(self):
        system = RacSystem(config(), seed=8)
        with pytest.raises(ValueError):
            system.domain_view(("galaxy", 1))


class TestSaturationInterval:
    def test_formula(self):
        system = RacSystem(config(), seed=9)
        # R * G * M * 8 / C
        expected = 3 * 10 * 2048 * 8 / 1e9
        assert system.saturation_interval(10) == pytest.approx(expected)

    def test_interval_override_wins(self):
        system = RacSystem(config(send_interval=0.123), seed=10)
        nodes = system.bootstrap(4)
        assert system.send_interval_for(nodes[0]) == 0.123

    def test_derived_interval_includes_margin(self):
        system = RacSystem(config(send_interval=None), seed=11)
        nodes = system.bootstrap(4)
        expected = system.saturation_interval(4) * system.config.saturation_margin
        assert system.send_interval_for(nodes[0]) == pytest.approx(expected)


class TestEvictionPlumbing:
    def test_eviction_is_idempotent(self):
        system = RacSystem(config(), seed=12)
        nodes = system.bootstrap(6)
        system.run(0.5)
        system.report_eviction(nodes[1], nodes[0], group_domain(1), "predecessor")
        system.report_eviction(nodes[2], nodes[0], group_domain(1), "relay")
        assert list(system.evicted) == [nodes[0]]
        assert system.stats.value("evictions") == 1

    def test_evicted_node_is_fully_detached(self):
        system = RacSystem(config(), seed=13)
        nodes = system.bootstrap(6)
        system.run(0.5)
        system.report_eviction(nodes[1], nodes[0], group_domain(1), "predecessor")
        assert not system.nodes[nodes[0]].active
        assert not system.network.attached(nodes[0])
        assert nodes[0] not in system.directory.node_ids

    def test_unicast_to_evicted_is_dropped(self):
        system = RacSystem(config(), seed=14)
        nodes = system.bootstrap(6)
        system.run(0.5)
        system.report_eviction(nodes[1], nodes[0], group_domain(1), "predecessor")
        system.unicast(nodes[2], nodes[0], "anything", 64)  # must not raise
        system.run(0.5)

    def test_active_node_ids_excludes_evicted(self):
        system = RacSystem(config(), seed=15)
        nodes = system.bootstrap(6)
        system.run(0.5)
        system.report_eviction(nodes[1], nodes[0], group_domain(1), "predecessor")
        assert nodes[0] not in system.active_node_ids()
        assert len(system.active_node_ids()) == 5
