"""Unit tests for onion construction, padding and peeling."""

import random

import pytest

from repro.core.onion import (
    build_noise,
    build_onion,
    onion_capacity,
    peel,
    unwrap_wire,
    wrap_wire,
)
from repro.crypto.hashes import message_id
from repro.crypto.keys import KeyPair

PADDED = 4096


@pytest.fixture
def population():
    relays = [KeyPair.generate("sim", seed=i) for i in range(1, 6)]
    destination_id = KeyPair.generate("sim", seed=100)
    destination_pseudonym = KeyPair.generate("sim", seed=101)
    return relays, destination_id, destination_pseudonym


class TestWirePadding:
    def test_wrap_unwrap_roundtrip(self):
        wire = wrap_wire(b"blob", 128)
        assert len(wire) == 128
        assert unwrap_wire(wire) == b"blob"

    def test_random_padding(self):
        rng = random.Random(1)
        a = wrap_wire(b"blob", 128, rng=rng)
        b = wrap_wire(b"blob", 128, rng=rng)
        assert a != b  # padding differs
        assert unwrap_wire(a) == unwrap_wire(b)

    def test_oversized_blob_rejected(self):
        with pytest.raises(ValueError):
            wrap_wire(b"x" * 200, 128)

    def test_corrupt_length_prefix_rejected(self):
        wire = bytearray(wrap_wire(b"blob", 128))
        wire[0] = 0xFF
        with pytest.raises(ValueError):
            unwrap_wire(bytes(wire))

    def test_short_wire_rejected(self):
        with pytest.raises(ValueError):
            unwrap_wire(b"xy")


class TestBuildOnion:
    def test_every_wire_is_padded_size(self, population):
        relays, _dest_id, dest_pseud = population
        onion = build_onion(
            b"payload", [r.public for r in relays], dest_pseud.public, PADDED, rng=random.Random(1)
        )
        assert len(onion.first_wire) == PADDED

    def test_layer_count(self, population):
        relays, _dest_id, dest_pseud = population
        onion = build_onion(
            b"payload", [r.public for r in relays], dest_pseud.public, PADDED, rng=random.Random(1)
        )
        assert len(onion.layer_msg_ids) == len(relays) + 1

    def test_first_msg_id_matches_wire(self, population):
        relays, _dest_id, dest_pseud = population
        onion = build_onion(
            b"payload", [r.public for r in relays], dest_pseud.public, PADDED, rng=random.Random(1)
        )
        assert message_id(unwrap_wire(onion.first_wire)) == onion.layer_msg_ids[0]

    def test_no_relays_rejected(self, population):
        _relays, _dest_id, dest_pseud = population
        with pytest.raises(ValueError):
            build_onion(b"p", [], dest_pseud.public, PADDED)

    def test_capacity_is_honoured(self, population):
        relays, _dest_id, dest_pseud = population
        keys = [r.public for r in relays]
        capacity = onion_capacity(PADDED, len(keys), keys[0])
        payload = b"x" * capacity
        onion = build_onion(payload, keys, dest_pseud.public, PADDED, rng=random.Random(2))
        assert len(onion.first_wire) == PADDED


class TestPeelChain:
    def walk(self, payload, relays, dest_pseud, marker=None):
        """Drive the onion through its full relay chain."""
        keys = [r.public for r in relays]
        onion = build_onion(
            payload, keys, dest_pseud.public, PADDED, marker_gid=marker, rng=random.Random(3)
        )
        wire = onion.first_wire
        seen_ids = [message_id(unwrap_wire(wire))]
        for relay in relays:
            result = peel(wire, relay, None, PADDED, rng=random.Random(4))
            assert result.kind == "relay"
            wire = result.inner_wire
            assert len(wire) == PADDED
            seen_ids.append(result.inner_msg_id)
        final = peel(wire, None, dest_pseud, PADDED)
        return onion, seen_ids, final

    def test_full_chain_delivers_payload(self, population):
        relays, _dest_id, dest_pseud = population
        _onion, _ids, final = self.walk(b"the secret payload", relays, dest_pseud)
        assert final.kind == "deliver"
        assert final.payload == b"the secret payload"

    def test_chain_ids_match_senders_predictions(self, population):
        relays, _dest_id, dest_pseud = population
        onion, seen_ids, _final = self.walk(b"p", relays, dest_pseud)
        assert seen_ids == onion.layer_msg_ids

    def test_marker_surfaces_only_at_last_relay(self, population):
        relays, _dest_id, dest_pseud = population
        keys = [r.public for r in relays]
        onion = build_onion(
            b"p", keys, dest_pseud.public, PADDED, marker_gid=77, rng=random.Random(5)
        )
        wire = onion.first_wire
        for index, relay in enumerate(relays):
            result = peel(wire, relay, None, PADDED, rng=random.Random(6))
            assert result.kind == "relay"
            if index == len(relays) - 1:
                assert result.channel_gid == 77
            else:
                assert result.channel_gid is None
            wire = result.inner_wire

    def test_single_relay_onion(self, population):
        relays, _dest_id, dest_pseud = population
        _onion, _ids, final = self.walk(b"short path", relays[:1], dest_pseud)
        assert final.payload == b"short path"

    def test_uninvolved_node_sees_opaque(self, population):
        relays, dest_id, dest_pseud = population
        keys = [r.public for r in relays]
        onion = build_onion(b"p", keys, dest_pseud.public, PADDED, rng=random.Random(7))
        outsider_id = KeyPair.generate("sim", seed=500)
        outsider_pseud = KeyPair.generate("sim", seed=501)
        result = peel(onion.first_wire, outsider_id, outsider_pseud, PADDED)
        assert result.kind == "opaque"

    def test_destination_cannot_peel_with_id_key(self, population):
        relays, dest_id, dest_pseud = population
        keys = [r.public for r in relays]
        onion = build_onion(b"p", keys, dest_pseud.public, PADDED, rng=random.Random(8))
        wire = onion.first_wire
        for relay in relays:
            wire = peel(wire, relay, None, PADDED, rng=random.Random(9)).inner_wire
        # ID key alone: nothing; pseudonym key: delivery.
        assert peel(wire, dest_id, None, PADDED).kind == "opaque"
        assert peel(wire, None, dest_pseud, PADDED).kind == "deliver"


class TestNoise:
    def test_noise_is_padded_and_opaque(self):
        rng = random.Random(10)
        wire = build_noise(PADDED, rng)
        assert len(wire) == PADDED
        anyone_id = KeyPair.generate("sim", seed=600)
        anyone_pseud = KeyPair.generate("sim", seed=601)
        assert peel(wire, anyone_id, anyone_pseud, PADDED).kind == "opaque"

    def test_noise_messages_are_unique(self):
        rng = random.Random(11)
        assert build_noise(PADDED, rng) != build_noise(PADDED, rng)

    def test_corrupt_wire_is_opaque_not_crash(self):
        keypair = KeyPair.generate("sim", seed=700)
        assert peel(b"\x00\x00", keypair, keypair, PADDED).kind == "opaque"
