"""Unit tests for anonymity metrics and Sybil economics."""

import math

import pytest

from repro.analysis.metrics import (
    degree_of_anonymity,
    shannon_entropy_bits,
    sybil_placement_cost,
    uniform_degree,
)


class TestEntropy:
    def test_uniform_entropy(self):
        assert shannon_entropy_bits([0.25] * 4) == pytest.approx(2.0)

    def test_point_mass_entropy(self):
        assert shannon_entropy_bits([1.0, 0.0, 0.0]) == 0.0

    def test_must_sum_to_one(self):
        with pytest.raises(ValueError):
            shannon_entropy_bits([0.5, 0.2])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy_bits([1.5, -0.5])


class TestDegree:
    def test_uniform_is_one(self):
        assert degree_of_anonymity([0.1] * 10) == pytest.approx(1.0)

    def test_identified_is_zero(self):
        assert degree_of_anonymity([1.0, 0.0, 0.0]) == 0.0

    def test_skew_is_in_between(self):
        d = degree_of_anonymity([0.7, 0.1, 0.1, 0.1])
        assert 0.0 < d < 1.0

    def test_singleton_is_zero(self):
        assert degree_of_anonymity([1.0]) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            degree_of_anonymity([])

    def test_uniform_helper(self):
        assert uniform_degree(1) == 0.0
        assert uniform_degree(1000) == 1.0

    def test_observer_posterior_scores_perfect(self):
        # The observer's candidate set is the whole group with a
        # uniform guess: degree 1 by construction.
        group = 14
        assert degree_of_anonymity([1 / group] * group) == pytest.approx(1.0)


class TestSybilCost:
    def test_paper_scale_numbers(self):
        # N=100k, G=1000, mk=16: one Sybil in a chosen group costs
        # ~100 admissions = ~6.6M hashes.
        cost = sybil_placement_cost(1, 100_000, 1000, 16)
        assert cost.expected_admissions == pytest.approx(100.0)
        assert cost.expected_hash_evaluations == pytest.approx(100 * 65536)

    def test_scales_linearly_with_targets(self):
        one = sybil_placement_cost(1, 100_000, 1000, 16)
        fifty = sybil_placement_cost(50, 100_000, 1000, 16)
        assert fifty.expected_admissions == pytest.approx(50 * one.expected_admissions)

    def test_controlling_a_group_majority_is_expensive(self):
        # To own 501 of 1000 group slots the opponent pays ~50k
        # admissions (3.3 billion hashes at mk=16) — and the group only
        # holds 1000 members, so most Sybils also bloat other groups.
        cost = sybil_placement_cost(501, 100_000, 1000, 16)
        assert cost.expected_hash_evaluations > 3e9

    def test_describe(self):
        assert "admissions" in sybil_placement_cost(2, 1000, 100, 8).describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            sybil_placement_cost(0, 100, 10, 8)
        with pytest.raises(ValueError):
            sybil_placement_cost(1, 100, 200, 8)
        with pytest.raises(ValueError):
            sybil_placement_cost(1, 100, 10, -1)
