"""Unit tests for the cost notation and the throughput model."""

import pytest

from repro.analysis import costs, throughput


class TestCostModels:
    def test_dissent_v1_signature(self):
        model = costs.dissent_v1_cost(100)
        assert model.terms == ((100, 100),)
        assert model.total_copies() == 10_000

    def test_dissent_v2_terms(self):
        model = costs.dissent_v2_cost(100, servers=10)
        assert model.terms == ((1, 10.0), (10, 10))

    def test_optimal_server_count_near_sqrt(self):
        assert costs.optimal_server_count(10_000) == 100
        assert abs(costs.optimal_server_count(100_000) - 316) <= 2

    def test_optimal_server_count_minimizes_load(self):
        n = 5000
        best = costs.optimal_server_count(n)
        load = best + n / best
        for s in (best - 1, best + 1):
            if s >= 2:
                assert s + n / s >= load - 1e-9

    def test_rac_grouped_equivalence(self):
        # (L-1)*R*Bcast(G) + R*Bcast(2G) == (L+1)*R*Bcast(G)
        model = costs.rac_cost(100_000, G=1000, L=5, R=7)
        assert model.bcast_units(1000) == pytest.approx((5 + 1) * 7)

    def test_rac_single_group_falls_back_to_nogroup(self):
        model = costs.rac_cost(500, G=1000, L=5, R=7)
        assert model.protocol == "rac-nogroup"
        assert model.terms == (((5 + 1) * 7, 500),)

    def test_onion_cost_is_l_copies(self):
        assert costs.onion_routing_cost(5).total_copies() == 5

    def test_describe_readable(self):
        text = costs.rac_cost(100_000, 1000, 5, 7).describe()
        assert "Bcast(1000)" in text and "Bcast(2000)" in text

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            costs.dissent_v1_cost(1)
        with pytest.raises(ValueError):
            costs.dissent_v2_cost(100, servers=1)
        with pytest.raises(ValueError):
            costs.onion_routing_cost(0)
        with pytest.raises(ValueError):
            costs.rac_nogroup_cost(100, 0, 7)


class TestThroughputModel:
    C = throughput.GBPS

    def test_onion_anchor_200mbps(self):
        assert throughput.onion_routing_throughput(100_000, self.C, L=5) == pytest.approx(200e6)

    def test_dissent_v1_quadratic_decay(self):
        t1 = throughput.dissent_v1_throughput(1000, self.C)
        t2 = throughput.dissent_v1_throughput(10_000, self.C)
        assert t1 / t2 == pytest.approx(100.0)

    def test_dissent_v2_power_1_5_decay(self):
        t1 = throughput.dissent_v2_throughput(1000, self.C)
        t2 = throughput.dissent_v2_throughput(100_000, self.C)
        assert t1 / t2 == pytest.approx(100 ** 1.5, rel=0.05)

    def test_rac_constant_beyond_group_size(self):
        t1 = throughput.rac_throughput(2000, self.C)
        t2 = throughput.rac_throughput(100_000, self.C)
        assert t1 == t2 == pytest.approx(self.C / (6 * 7 * 1000))

    def test_rac_nogroup_linear_decay(self):
        t1 = throughput.rac_nogroup_throughput(1000, self.C)
        t2 = throughput.rac_nogroup_throughput(10_000, self.C)
        assert t1 / t2 == pytest.approx(10.0)

    def test_rac_configs_equal_below_group_size(self):
        for n in (100, 500, 999):
            assert throughput.rac_throughput(n, self.C) == throughput.rac_nogroup_throughput(
                n, self.C
            )

    def test_paper_ratios_at_100k(self):
        n = 100_000
        dv2 = throughput.dissent_v2_throughput(n, self.C)
        assert throughput.rac_nogroup_throughput(n, self.C) / dv2 == pytest.approx(15, rel=0.05)
        assert throughput.rac_throughput(n, self.C) / dv2 == pytest.approx(1500, rel=0.05)

    def test_rac_1000_beats_dissent_v2_beyond_crossover(self):
        # Figure 3: the curves cross around N=1000.
        assert throughput.rac_throughput(10_000, self.C) > throughput.dissent_v2_throughput(
            10_000, self.C
        )
        # Below the crossover Dissent v2 is faster (as in the figure).
        assert throughput.rac_throughput(100, self.C) < throughput.dissent_v2_throughput(
            100, self.C
        )

    def test_sweep_shape(self):
        models = throughput.PROTOCOLS()
        data = throughput.sweep(models, [100, 1000])
        assert set(data) == {"RAC-NoGroup", "RAC-1000", "Dissent v1", "Dissent v2", "Onion routing"}
        assert all(len(series) == 2 for series in data.values())

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            throughput.dissent_v1_throughput(1)
        with pytest.raises(ValueError):
            throughput.rac_throughput(100, 0)
