"""Unit tests for the intersection-attack analysis."""

import math

import pytest

from repro.analysis.intersection import (
    candidate_set_after_rounds,
    forced_eviction_probability,
    rounds_to_deanonymize,
)


class TestRawAttackPower:
    def test_linear_shrink(self):
        assert candidate_set_after_rounds(1000, 10, 5) == 950

    def test_floors_at_one(self):
        assert candidate_set_after_rounds(100, 50, 10) == 1

    def test_no_removals_no_shrink(self):
        assert candidate_set_after_rounds(1000, 0, 100) == 1000

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            candidate_set_after_rounds(0, 1, 1)


class TestForcedEvictions:
    def test_matches_paper_bound(self):
        # f=5%, R=7: < 6.0e-6 per target (§V-A2 case 2).
        p = forced_eviction_probability(7, 0.05, 1000)
        assert p.value == pytest.approx(5.9e-6, rel=0.05)

    def test_more_rings_harden(self):
        weak = forced_eviction_probability(5, 0.1, 1000)
        strong = forced_eviction_probability(9, 0.1, 1000)
        assert strong < weak

    def test_no_opponents_no_evictions(self):
        assert forced_eviction_probability(7, 0.0, 1000).value == 0.0


class TestDeanonymizationCost:
    def test_paper_parameters_are_astronomic(self):
        result = rounds_to_deanonymize(1000, R=7, f=0.05)
        assert result.expected_attack_rounds > 1e7
        assert result.evictions_needed == 999

    def test_zero_opponents_means_infinite(self):
        result = rounds_to_deanonymize(1000, R=7, f=0.0)
        assert math.isinf(result.expected_attack_rounds)

    def test_already_at_target(self):
        result = rounds_to_deanonymize(1000, R=7, f=0.05, target_set_size=1000)
        assert result.expected_attack_rounds == 0.0

    def test_describe(self):
        text = rounds_to_deanonymize(1000, R=7, f=0.05).describe()
        assert "G=1000" in text and "rounds" in text

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            rounds_to_deanonymize(100, R=7, f=0.05, target_set_size=0)
