"""Unit tests for the plain onion-routing baseline."""

import pytest

from repro.baselines.onion_routing import OnionRoutingNetwork


class TestDelivery:
    def test_end_to_end(self):
        net = OnionRoutingNetwork(10, seed=1)
        outcome = net.send(0, 9, b"hello tor", length=3)
        assert outcome.delivered
        assert outcome.payload == b"hello tor"

    def test_path_avoids_endpoints(self):
        net = OnionRoutingNetwork(10, seed=2)
        path = net.choose_path(0, 9, 4)
        assert 0 not in path and 9 not in path
        assert len(set(path)) == 4

    def test_copies_equal_hops(self):
        net = OnionRoutingNetwork(10, seed=3)
        outcome = net.send(0, 9, b"x", length=4)
        # L relays + final hop to the destination = L+1 unicast copies...
        # counted as sender->relay1 (1) + relay transitions (L).
        assert outcome.copies_on_wire == 5

    def test_explicit_path_respected(self):
        net = OnionRoutingNetwork(10, seed=4)
        path = [2, 5, 7]
        outcome = net.send(0, 9, b"x", path=path)
        assert outcome.hops_taken == path

    def test_single_relay(self):
        net = OnionRoutingNetwork(5, seed=5)
        outcome = net.send(0, 4, b"x", length=1)
        assert outcome.delivered


class TestFreeriderVulnerability:
    def test_dropping_relay_kills_delivery(self):
        net = OnionRoutingNetwork(10, seed=6)
        path = net.choose_path(0, 9, 3)
        net.set_dropping([path[1]])
        outcome = net.send(0, 9, b"x", path=path)
        assert not outcome.delivered
        assert outcome.payload is None

    def test_sender_cannot_identify_the_dropper(self):
        # The defining weakness: the delivery report stops at the relay
        # *before* the freerider — the sender sees where the trail went
        # cold, not who dropped (contrast with RAC's relay check).
        net = OnionRoutingNetwork(10, seed=7)
        path = net.choose_path(0, 9, 3)
        net.set_dropping([path[2]])
        outcome = net.send(0, 9, b"x", path=path)
        assert path[2] not in outcome.hops_taken

    def test_drop_counter(self):
        net = OnionRoutingNetwork(6, seed=8)
        net.set_dropping([1])
        net.send(0, 5, b"x", path=[1])
        assert net.drops_observed == 1


class TestValidation:
    def test_tiny_network_rejected(self):
        with pytest.raises(ValueError):
            OnionRoutingNetwork(2)

    def test_impossible_path_length_rejected(self):
        net = OnionRoutingNetwork(4, seed=9)
        with pytest.raises(ValueError):
            net.choose_path(0, 3, 5)
