"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_fig3_options(self):
        args = build_parser().parse_args(["fig3", "--group-size", "500", "--relays", "3"])
        assert args.group_size == 500 and args.relays == 3 and args.rings == 7


class TestCommands:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Dissent v1" in out and "100000" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "RAC-1000" in out

    def test_fig3_custom_group(self, capsys):
        assert main(["fig3", "--group-size", "500"]) == 0
        assert "RAC-500" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "5.8e-1020" in capsys.readouterr().out

    def test_claims_exit_code_reflects_holding(self, capsys):
        assert main(["claims"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_nash(self, capsys):
        assert main(["nash"]) == 0
        assert "Theorem 1 (Nash equilibrium): holds" in capsys.readouterr().out

    def test_ablation(self, capsys):
        assert main(["ablation"]) == 0
        out = capsys.readouterr().out
        assert "Ablation: relays L" in out and "recommended" in out

    def test_trace(self, capsys):
        assert main(["trace", "--population", "8", "--seed", "7"]) == 0
        assert "Step 3" in capsys.readouterr().out


class TestSweep:
    def test_run_requires_an_axis(self):
        with pytest.raises(SystemExit):
            main(["sweep", "run", "--run-dir", "/tmp/x", "--experiment", "protocol"])

    def test_serial_run_status_aggregate(self, tmp_path, capsys):
        run_dir = str(tmp_path / "camp")
        assert (
            main(
                [
                    "sweep",
                    "run",
                    "--run-dir",
                    run_dir,
                    "--experiment",
                    "fig1_point",
                    "--axis",
                    "nodes=100,1000",
                    "--seeds",
                    "0,1",
                    "--serial",
                ]
            )
            == 0
        )
        assert "4/4 cells ok" in capsys.readouterr().out

        assert main(["sweep", "status", "--run-dir", run_dir]) == 0
        assert "4/4 cells ok, 0 failed, 0 pending" in capsys.readouterr().out

        assert (
            main(
                [
                    "sweep",
                    "aggregate",
                    "--run-dir",
                    run_dir,
                    "--metric",
                    "dissent_v1_bps",
                    "--by",
                    "nodes",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "dissent_v1_bps by nodes" in out and "100000" in out

        # Resuming a finished campaign is a no-op that still succeeds.
        assert main(["sweep", "resume", "--run-dir", run_dir]) == 0
        assert "4/4 cells ok" in capsys.readouterr().out

    def test_aggregate_unknown_metric_fails(self, tmp_path, capsys):
        run_dir = str(tmp_path / "camp")
        main(
            [
                "sweep", "run", "--run-dir", run_dir,
                "--experiment", "fig1_point", "--axis", "nodes=100", "--serial",
            ]
        )
        capsys.readouterr()
        assert main(["sweep", "aggregate", "--run-dir", run_dir, "--metric", "nope"]) == 1

    def test_run_unknown_workload_names_the_registry(self, capsys):
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "sweep", "run", "--run-dir", "/tmp/x",
                    "--experiment", "portocol", "--axis", "nodes=4",
                ]
            )
        message = str(err.value)
        assert "portocol" in message and "protocol" in message


class TestCampaign:
    def test_unknown_strategy_rejected_before_running(self):
        with pytest.raises(SystemExit) as err:
            main(
                [
                    "campaign", "run", "--run-dir", "/tmp/x",
                    "--strategies", "sleepy-relay", "--serial",
                ]
            )
        assert "sleepy-relay" in str(err.value)

    def test_serial_run_status_report_check(self, tmp_path, capsys):
        run_dir = str(tmp_path / "camp")
        assert (
            main(
                [
                    "campaign", "run", "--run-dir", run_dir,
                    "--strategies", "no-noise", "--plans", "none",
                    "--loss", "0", "--nodes", "10", "--seeds", "0",
                    "--horizon", "6", "--serial",
                ]
            )
            == 0
        )
        assert "1/1 cells ok" in capsys.readouterr().out

        assert main(["campaign", "status", "--run-dir", run_dir]) == 0
        out = capsys.readouterr().out
        assert "1 strategies" in out and "1/1 cells ok" in out

        report_path = str(tmp_path / "frontier.txt")
        assert (
            main(
                [
                    "campaign", "report", "--run-dir", run_dir,
                    "--out", report_path, "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "accountability frontier" in out and "SOUND" in out
        with open(report_path, encoding="utf-8") as fh:
            assert "no-noise" in fh.read()

    def test_coalition_fraction_and_size_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="not both"):
            main(
                [
                    "campaign", "run", "--run-dir", "/tmp/x",
                    "--coalition-fraction", "0.25",
                    "--coalition-size", "3", "--serial",
                ]
            )

    def test_coalition_size_needs_a_single_group_size(self):
        with pytest.raises(SystemExit, match="exactly one"):
            main(
                [
                    "campaign", "run", "--run-dir", "/tmp/x",
                    "--nodes", "12,16", "--coalition-size", "3", "--serial",
                ]
            )

    def test_coalition_fraction_on_unilateral_strategy_rejected(self):
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(
                [
                    "campaign", "run", "--run-dir", "/tmp/x",
                    "--strategies", "silent-relay",
                    "--coalition-fraction", "0.25", "--serial",
                ]
            )

    def test_coalition_size_run_and_frontier_report(self, tmp_path, capsys):
        # A minimal real coalition cell: at the config default f=0.1
        # and G=20 the quorum is floor(0.1*20)+1 = 3, so a framing
        # *pair* sits exactly at the f*G bound — undetectable and
        # harmless, the cell is cheap and the --check gate must pass;
        # the report must carry the coalition frontier section.
        run_dir = str(tmp_path / "camp")
        assert (
            main(
                [
                    "campaign", "run", "--run-dir", run_dir,
                    "--strategies", "coalition-frame", "--plans", "none",
                    "--loss", "0", "--nodes", "20", "--seeds", "0",
                    "--coalition-size", "2", "--shuffle-rounds", "4",
                    "--horizon", "8", "--serial",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "1/1 cells ok" in out
        assert "coalition fractions" in out  # spec.describe() names the axis

        report_path = str(tmp_path / "frontier.txt")
        assert (
            main(
                [
                    "campaign", "report", "--run-dir", run_dir,
                    "--out", report_path, "--check",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "coalition frontier" in out
        assert "paper bound f*G" in out
        assert "sub-f*G cells" in out and "all SOUND" in out
        with open(report_path, encoding="utf-8") as fh:
            text = fh.read()
        assert "coalition-frame" in text and "2/20" in text

    def test_report_on_plain_sweep_dir_is_a_clear_error(self, tmp_path):
        run_dir = str(tmp_path / "sweep")
        main(
            [
                "sweep", "run", "--run-dir", run_dir,
                "--experiment", "fig1_point", "--axis", "nodes=100", "--serial",
            ]
        )
        with pytest.raises(ValueError, match="not a campaign"):
            main(["campaign", "report", "--run-dir", run_dir])


class TestLive:
    def test_demo_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["live"])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["live", "demo"])
        assert args.nodes == 8 and args.duration == 10.0 and args.port_base is None
        assert not args.subprocess and not args.check

    def test_demo_options(self):
        args = build_parser().parse_args(
            ["live", "demo", "--nodes", "4", "--duration", "2.5", "--port-base", "7100", "--check"]
        )
        assert args.nodes == 4 and args.duration == 2.5
        assert args.port_base == 7100 and args.check

    def test_demo_runs_a_small_cluster(self, capsys):
        assert main(["live", "demo", "--nodes", "3", "--duration", "2", "--messages", "1"]) == 0
        out = capsys.readouterr().out
        assert "live cluster: 3 nodes" in out
        assert "anonymous deliveries" in out

    def test_demo_check_passes_on_healthy_run(self, capsys):
        assert (
            main(["live", "demo", "--nodes", "3", "--duration", "2", "--messages", "1", "--check"])
            == 0
        )
        assert "FAILED" not in capsys.readouterr().out


class TestScale:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scale"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["scale", "run", "--run-dir", "/tmp/x"])
        assert args.nodes == 64 and args.shards == 2 and args.workers == 2
        assert args.epoch == 1.0 and not args.serial and not args.verify

    def test_deviant_flag_requires_pair(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                ["scale", "run", "--run-dir", str(tmp_path), "--deviant", "silent-relay"]
            )

    def test_verify_reports_equivalence(self, tmp_path, capsys):
        code = main(
            [
                "scale", "verify",
                "--run-dir", str(tmp_path / "run"),
                "--nodes", "24", "--shards", "2", "--seed", "3", "--horizon", "1.0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "verdict:    EQUIVALENT" in out
        assert "merged fingerprint:" in out

    def test_profile_writes_per_shard_dumps_and_merged_report(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(
            [
                "--profile", "scale", "run",
                "--run-dir", str(run_dir),
                "--nodes", "24", "--shards", "2", "--seed", "3",
                "--horizon", "0.5", "--epoch", "0.5", "--serial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "merged profile over 2 shards" in out
        assert (run_dir / "profile" / "shard000.prof").exists()
        assert (run_dir / "profile" / "shard001.prof").exists()
        assert (run_dir / "profile" / "shard000.epoch000.prof").exists()


class TestTopo:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["topo", "run", "--preset", "wan-king"])
        assert args.substrate == "sim"
        assert args.nodes == 10
        assert args.timer_scale == pytest.approx(1.0)

    def test_list_names_every_preset(self, capsys):
        assert main(["topo", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("lan", "wan-king", "hetero-access", "planet-diurnal"):
            assert name in out

    def test_show_prints_matrix_and_fingerprint(self, capsys):
        assert main(["topo", "show", "--preset", "wan-king", "--nodes", "4", "--matrix"]) == 0
        out = capsys.readouterr().out
        assert "fingerprint" in out
        assert "slot" in out

    def test_verify_reports_lan_equivalence(self, capsys):
        assert main(["topo", "verify"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_run_sim_with_check_passes_on_wan(self, capsys):
        code = main(
            [
                "topo", "run", "--preset", "wan-king", "--nodes", "6",
                "--horizon", "6", "--check",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "wan-king" in out
