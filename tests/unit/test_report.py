"""Unit tests for the report generator and its CLI command."""

import pathlib

from repro.cli import main
from repro.experiments.report import full_report, write_report


class TestFullReport:
    def test_contains_every_artifact(self):
        text = full_report()
        for marker in (
            "reproduction report",
            "In-text numeric claims",
            "Figure 1",
            "Figure 3",
            "Table I",
            "Message copies per anonymous communication",
            "Nash deviation analysis",
            "Ablation: relays L",
        ):
            assert marker in text, marker

    def test_headline_reports_all_claims(self):
        assert "10/10 in-text numeric claims reproduce" in full_report(include_ablations=False)

    def test_ablations_can_be_skipped(self):
        text = full_report(include_ablations=False)
        assert "Ablation: relays L" not in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.txt"
        text = write_report(str(path))
        assert path.read_text().strip() == text.strip()


class TestReportCli:
    def test_report_command(self, capsys):
        assert main(["report", "--no-ablations"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "r.txt"
        assert main(["report", "--no-ablations", "--output", str(out)]) == 0
        assert out.exists()
        assert "Figure 3" in out.read_text()
