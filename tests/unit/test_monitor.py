"""Unit tests for the three misbehaviour checks."""

import pytest

from repro.core.monitor import PredecessorMonitor, RateMonitor, RelayMonitor
from repro.overlay.broadcast import BroadcastState


class TestRelayMonitor:
    def test_fulfilled_chain_produces_no_suspicion(self):
        monitor = RelayMonitor()
        monitor.expect([10, 11, 12], relays=[7, 8], deadline=5.0)
        for msg_id in (10, 11, 12):
            monitor.observe(msg_id)
        assert monitor.collect_expired(6.0) == []

    def test_first_silent_relay_is_blamed(self):
        monitor = RelayMonitor()
        monitor.expect([10, 11, 12], relays=[7, 8], deadline=5.0)
        monitor.observe(10)  # sender's own broadcast seen
        verdicts = monitor.collect_expired(6.0)
        assert len(verdicts) == 1
        assert verdicts[0].relay == 7 and verdicts[0].msg_id == 11

    def test_later_gaps_not_attributed(self):
        # Relay 7 forwarded; relay 8 did not: only 8 is blamed.
        monitor = RelayMonitor()
        monitor.expect([10, 11, 12], relays=[7, 8], deadline=5.0)
        monitor.observe(10)
        monitor.observe(11)
        verdicts = monitor.collect_expired(6.0)
        assert [v.relay for v in verdicts] == [8]

    def test_nothing_before_deadline(self):
        monitor = RelayMonitor()
        monitor.expect([10, 11], relays=[7], deadline=5.0)
        assert monitor.collect_expired(4.9) == []
        assert len(monitor) == 1

    def test_multiple_onions_tracked_independently(self):
        monitor = RelayMonitor()
        monitor.expect([10, 11], relays=[7], deadline=5.0)
        monitor.expect([20, 21], relays=[9], deadline=5.0)
        monitor.observe(10)
        monitor.observe(20)
        monitor.observe(21)
        verdicts = monitor.collect_expired(6.0)
        assert [(v.relay, v.msg_id) for v in verdicts] == [(7, 11)]

    def test_shared_msg_id_across_onions(self):
        monitor = RelayMonitor()
        a = monitor.expect([10, 11], relays=[7], deadline=5.0)
        b = monitor.expect([10, 12], relays=[8], deadline=5.0)
        monitor.observe(10)
        monitor.observe(11)
        monitor.observe(12)
        assert monitor.collect_expired(6.0) == []
        assert a != b

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            RelayMonitor().expect([1, 2, 3], relays=[7], deadline=1.0)


class TestPredecessorMonitor:
    def test_deadline_fires_once(self):
        monitor = PredecessorMonitor(timeout=1.0)
        monitor.on_first_seen(100, now=0.0, expected={(1, 0)})
        assert monitor.due(0.5) == []
        due = monitor.due(1.5)
        assert due == [(100, {(1, 0)})]
        assert monitor.due(2.0) == []

    def test_expected_set_is_frozen_at_first_sight(self):
        monitor = PredecessorMonitor(timeout=1.0)
        expected = {(1, 0), (2, 1)}
        monitor.on_first_seen(100, 0.0, expected)
        expected.add((3, 2))  # later topology change must not leak in
        due = monitor.due(2.0)
        assert due[0][1] == {(1, 0), (2, 1)}

    def test_forget_node_prunes_expectations(self):
        monitor = PredecessorMonitor(timeout=1.0)
        monitor.on_first_seen(100, 0.0, {(1, 0), (2, 1)})
        monitor.forget_node(1)
        assert monitor.due(2.0)[0][1] == {(2, 1)}

    def test_missing_and_replaying_delegate_to_state(self):
        state = BroadcastState()
        state.on_receive(100, (1, 0), 0.0)
        state.on_receive(100, (1, 0), 0.1)
        expected = {(1, 0), (2, 1)}
        assert PredecessorMonitor.missing(state, 100, expected) == {(2, 1)}
        assert PredecessorMonitor.replaying(state, 100) == {(1, 0)}


class TestRateMonitor:
    def test_silent_predecessor_is_rate_low(self):
        monitor = RateMonitor(window=1.0, max_per_window=10)
        monitor.track(7, now=0.0)
        verdicts = monitor.check(now=1.5)
        assert [(v.predecessor, v.reason) for v in verdicts] == [(7, "rate-low")]

    def test_active_predecessor_is_fine(self):
        monitor = RateMonitor(window=1.0, max_per_window=10)
        monitor.track(7, now=0.0)
        monitor.record(7, now=1.2)
        assert monitor.check(now=1.5) == []

    def test_flooding_predecessor_is_rate_high(self):
        monitor = RateMonitor(window=1.0, max_per_window=3)
        monitor.track(7, now=0.0)
        for i in range(5):
            monitor.record(7, now=1.0 + i * 0.01)
        verdicts = monitor.check(now=1.1)
        assert verdicts and verdicts[0].reason == "rate-high"

    def test_dynamic_cap_overrides_default(self):
        monitor = RateMonitor(window=1.0, max_per_window=3)
        monitor.track(7, now=0.0)
        for i in range(5):
            monitor.record(7, now=1.0 + i * 0.01)
        assert monitor.check(now=1.1, max_per_window=100) == []

    def test_grace_period_for_new_predecessors(self):
        monitor = RateMonitor(window=1.0, max_per_window=10)
        monitor.track(7, now=5.0)
        assert monitor.check(now=5.5) == []  # observed < one window

    def test_window_slides(self):
        monitor = RateMonitor(window=1.0, max_per_window=2)
        monitor.track(7, now=0.0)
        monitor.record(7, now=0.1)
        monitor.record(7, now=0.2)
        monitor.record(7, now=2.0)  # old arrivals expired by now
        assert monitor.check(now=2.1) == []

    def test_untrack_stops_judging(self):
        monitor = RateMonitor(window=1.0, max_per_window=10)
        monitor.track(7, now=0.0)
        monitor.untrack(7)
        assert monitor.check(now=5.0) == []

    def test_record_auto_tracks(self):
        monitor = RateMonitor(window=1.0, max_per_window=10)
        monitor.record(9, now=0.0)
        assert 9 in monitor.tracked()

    def test_invalid_window_rejected(self):
        with pytest.raises(ValueError):
            RateMonitor(window=0.0, max_per_window=1)
