"""Unit tests for the coalition adversary layer."""

import pytest

from repro.freeride.coalition import (
    COALITION_CLASSES,
    COALITION_MODES,
    CoalitionCoordinator,
    CoalitionFrame,
    CoalitionShield,
    CoalitionStagger,
    build_coalition,
)
from repro.freeride.registry import BEHAVIORS


class TestCoordinator:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown coalition mode"):
            CoalitionCoordinator("bribe")

    def test_roster_sorted_and_deduplicated(self):
        coord = CoalitionCoordinator("shield", [9, 3, 3, 7])
        assert coord.member_ids == (3, 7, 9)
        assert len(coord) == 3
        assert coord.is_member(7) and not coord.is_member(4)

    def test_member_cannot_be_victim(self):
        with pytest.raises(ValueError, match="cannot be their own victims"):
            CoalitionCoordinator("frame", [1, 2], victims=[2, 5])

    def test_rotation_period_positive(self):
        with pytest.raises(ValueError, match="rotation period"):
            CoalitionCoordinator("stagger", [1, 2], rotation_period=0.0)

    def test_censored_share_drops_members_only(self):
        coord = CoalitionCoordinator("shield", [3, 7])
        assert coord.censored_share((1, 3, 5, 7)) == (1, 5)

    def test_framed_share_appends_victims_deduplicated(self):
        coord = CoalitionCoordinator("frame", [1, 2], victims=[8, 9])
        assert coord.framed_share((9, 4)) == (9, 4, 8)

    def test_rotation_is_pure_function_of_time(self):
        coord = CoalitionCoordinator("stagger", [5, 11, 17], rotation_period=2.0)
        # Slot k covers [2k, 2k+2); roster order is sorted member ids.
        assert coord.active_member(0.0) == 5
        assert coord.active_member(1.99) == 5
        assert coord.active_member(2.0) == 11
        assert coord.active_member(4.5) == 17
        assert coord.active_member(6.0) == 5  # wraps around

    def test_replica_coordinators_agree(self):
        # The determinism contract behind cross-shard coalitions: two
        # coordinators built from the same planning data make identical
        # decisions without sharing any state.
        a = CoalitionCoordinator("stagger", [4, 20, 36, 52], rotation_period=1.5)
        b = CoalitionCoordinator("stagger", [52, 36, 20, 4], rotation_period=1.5)
        for t in (0.0, 1.5, 3.7, 10.1, 59.9):
            assert a.active_member(t) == b.active_member(t)
        assert a.censored_share((4, 9, 36)) == b.censored_share((4, 9, 36))


class _FakeBlacklist:
    def __init__(self, members):
        self._members = tuple(members)

    def members(self):
        return self._members


class _FakeEnv:
    def __init__(self, now):
        self.now = now


class _FakeNode:
    def __init__(self, node_id, now=0.0, blacklist=()):
        self.node_id = node_id
        self.env = _FakeEnv(now)
        self.relays_blacklist = _FakeBlacklist(blacklist)


class TestMembers:
    def test_shield_refuses_relay_and_censors(self):
        members = build_coalition("shield", [3, 7])
        behavior = members[3]
        assert isinstance(behavior, CoalitionShield)
        assert behavior.should_relay_onion(_FakeNode(3), None) is False
        assert behavior.refused == 1
        node = _FakeNode(3, blacklist=(1, 7, 9))
        assert behavior.blacklist_share(node) == (1, 9)

    def test_frame_shares_victims_but_relays(self):
        members = build_coalition("frame", [1, 2], victims=[8])
        behavior = members[1]
        assert isinstance(behavior, CoalitionFrame)
        node = _FakeNode(1, blacklist=())
        assert behavior.blacklist_share(node) == (8,)
        # Data plane stays protocol-compliant (HonestBehavior default).
        assert behavior.should_relay_onion(node, None) is True

    def test_stagger_refuses_only_on_duty(self):
        members = build_coalition("stagger", [5, 11], rotation_period=2.0)
        behavior = members[5]
        assert isinstance(behavior, CoalitionStagger)
        assert behavior.should_relay_onion(_FakeNode(5, now=0.5), None) is False
        assert behavior.should_relay_onion(_FakeNode(5, now=2.5), None) is True
        assert members[11].should_relay_onion(_FakeNode(11, now=2.5), None) is False
        assert behavior.refused == 1

    def test_members_share_one_coordinator(self):
        members = build_coalition("shield", [1, 2, 3])
        coords = {id(m.coordinator) for m in members.values()}
        assert len(coords) == 1

    def test_frame_requires_victims(self):
        with pytest.raises(ValueError, match="needs at least one victim"):
            build_coalition("frame", [1, 2])

    def test_empty_coalition_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            build_coalition("shield", [])


class TestRegistry:
    def test_every_mode_registered(self):
        assert set(COALITION_CLASSES) == set(COALITION_MODES)
        for cls in (CoalitionShield, CoalitionFrame, CoalitionStagger):
            spec = BEHAVIORS[cls.name]
            assert spec.coalition_mode in COALITION_MODES
            behavior = spec.factory()
            assert isinstance(behavior, cls)

    def test_frame_is_undetectable_opponent(self):
        # The framing member is protocol-compliant on the data plane:
        # the campaign checker must not demand its eviction.
        spec = BEHAVIORS["coalition-frame"]
        assert spec.kind == "opponent"
        assert not spec.detectable

    def test_freeriders_are_detectable(self):
        for name in ("coalition-shield", "coalition-stagger"):
            spec = BEHAVIORS[name]
            assert spec.kind == "freerider"
            assert spec.detectable
