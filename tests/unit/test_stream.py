"""Unit tests for repro.crypto.stream (SHA256-CTR + HMAC)."""

import pytest

from repro.crypto import stream


KEY = b"k" * 32
NONCE = b"n" * 16


class TestKeystreamXor:
    def test_is_its_own_inverse(self):
        data = b"some plaintext longer than one block to span counters" * 3
        once = stream.keystream_xor(KEY, NONCE, data)
        assert stream.keystream_xor(KEY, NONCE, once) == data

    def test_changes_the_data(self):
        assert stream.keystream_xor(KEY, NONCE, b"hello") != b"hello"

    def test_nonce_sensitivity(self):
        a = stream.keystream_xor(KEY, b"a" * 16, b"hello")
        b = stream.keystream_xor(KEY, b"b" * 16, b"hello")
        assert a != b

    def test_empty_data(self):
        assert stream.keystream_xor(KEY, NONCE, b"") == b""


class TestMac:
    def test_verify_accepts_valid(self):
        tag = stream.mac(KEY, b"data")
        assert stream.verify_mac(KEY, b"data", tag)

    def test_verify_rejects_tampered_data(self):
        tag = stream.mac(KEY, b"data")
        assert not stream.verify_mac(KEY, b"date", tag)

    def test_verify_rejects_wrong_key(self):
        tag = stream.mac(KEY, b"data")
        assert not stream.verify_mac(b"x" * 32, b"data", tag)

    def test_tag_length(self):
        assert len(stream.mac(KEY, b"data")) == stream.MAC_LEN


class TestEncryptDecrypt:
    def test_roundtrip(self):
        blob = stream.encrypt(KEY, NONCE, b"secret payload")
        assert stream.decrypt(KEY, NONCE, blob) == b"secret payload"

    def test_ciphertext_not_plaintext(self):
        blob = stream.encrypt(KEY, NONCE, b"secret payload")
        assert b"secret payload" not in blob

    def test_wrong_key_raises(self):
        blob = stream.encrypt(KEY, NONCE, b"secret")
        with pytest.raises(stream.AuthenticationError):
            stream.decrypt(b"y" * 32, NONCE, blob)

    def test_wrong_nonce_raises(self):
        blob = stream.encrypt(KEY, NONCE, b"secret")
        with pytest.raises(stream.AuthenticationError):
            stream.decrypt(KEY, b"m" * 16, blob)

    def test_truncated_blob_raises(self):
        with pytest.raises(stream.AuthenticationError):
            stream.decrypt(KEY, NONCE, b"short")

    def test_bitflip_raises(self):
        blob = bytearray(stream.encrypt(KEY, NONCE, b"secret"))
        blob[-1] ^= 1
        with pytest.raises(stream.AuthenticationError):
            stream.decrypt(KEY, NONCE, bytes(blob))

    def test_empty_plaintext(self):
        blob = stream.encrypt(KEY, NONCE, b"")
        assert stream.decrypt(KEY, NONCE, blob) == b""
