"""Unit tests for RacNode against a stub environment.

The stub gives full control over time, topology and message capture, so
each node-level rule is testable without the packet simulator.
"""

import random

import pytest

from repro.core.config import RacConfig
from repro.core.messages import Accusation, Broadcast, group_domain
from repro.core.node import RacNode
from repro.core.onion import build_onion
from repro.crypto.keys import KeyPair
from repro.overlay.membership import MembershipView
from repro.simnet.stats import StatsRegistry
from repro.simnet.trace import Tracer


class StubEnv:
    """A minimal deterministic node environment."""

    def __init__(self, config, member_ids):
        self.config = config
        self.now = 0.0
        self.stats = StatsRegistry()
        self.tracer = Tracer(enabled=True)
        self.sent = []  # (src, dst, payload, size)
        self.scheduled = []  # (time, fn, args)
        self.evictions = []
        self.delivered = []
        self.view = MembershipView(config.num_rings)
        self.keys = {}
        for member in member_ids:
            keypair = KeyPair.generate("sim", seed=member)
            self.keys[member] = keypair
            self.view.add(member, keypair.public)

    # env interface --------------------------------------------------------
    def schedule(self, delay, fn, *args):
        self.scheduled.append((self.now + delay, fn, args))

    def unicast(self, src, dst, payload, size):
        self.sent.append((src, dst, payload, size))

    def group_of(self, node_id):
        return 1

    def domain_view(self, domain):
        return self.view if domain == group_domain(1) else None

    def send_interval_for(self, node_id):
        return 0.1

    def usable_as_relay(self, node_id):
        return True

    def on_delivered(self, node_id, payload):
        self.delivered.append((node_id, payload))

    def report_eviction(self, reporter, accused, domain, kind):
        self.evictions.append((reporter, accused, kind))

    # helpers ------------------------------------------------------------
    def fire_due(self):
        """Run every action scheduled up to `now` (repeatedly)."""
        progressed = True
        while progressed:
            progressed = False
            for entry in sorted(self.scheduled, key=lambda e: e[0]):
                if entry[0] <= self.now and entry in self.scheduled:
                    self.scheduled.remove(entry)
                    entry[1](*entry[2])
                    progressed = True


def make_node(member_ids=(1, 2, 3, 4, 5, 6), node_id=1, behavior=None):
    config = RacConfig(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.1,
        relay_timeout=1.0,
        predecessor_timeout=0.5,
        rate_window=1.0,
        puzzle_bits=2,
    )
    env = StubEnv(config, member_ids)
    node = RacNode(
        node_id,
        config,
        env,
        env.keys[node_id],
        KeyPair.generate("sim", seed=1000 + node_id),
        behavior=behavior,
        rng=random.Random(7),
    )
    node.active = True
    return node, env


def deliver_broadcast(node, env, wire, msg_id, ring_index=None):
    """Hand a broadcast to the node from its ring predecessor(s)."""
    domain = group_domain(1)
    rings = range(env.view.num_rings) if ring_index is None else [ring_index]
    for ring in rings:
        pred = env.view.topology.predecessor(node.node_id, ring)
        node.on_message(pred, Broadcast(domain, msg_id, wire, ring))


class TestForwarding:
    def test_first_copy_forwarded_on_all_rings(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        deliver_broadcast(node, env, wire, msg_id, ring_index=0)
        forwarded = [s for s in env.sent if isinstance(s[2], Broadcast)]
        assert len(forwarded) == env.view.num_rings
        for _src, dst, bc, _size in forwarded:
            assert env.view.topology.successor(node.node_id, bc.ring_index) == dst

    def test_duplicate_copies_not_reforwarded(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        deliver_broadcast(node, env, wire, msg_id)  # copies on all rings
        forwarded = [s for s in env.sent if isinstance(s[2], Broadcast)]
        assert len(forwarded) == env.view.num_rings  # once, not 3x

    def test_broadcast_from_non_predecessor_ignored(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        ring = 0
        pred = env.view.topology.predecessor(node.node_id, ring)
        stranger = next(m for m in env.view.members if m not in (node.node_id, pred))
        node.on_message(stranger, Broadcast(group_domain(1), msg_id, wire, ring))
        assert env.sent == []
        assert node.counters.get("broadcast_from_non_predecessor") == 1


class TestDeliveryAndRelaying:
    def build_onion_for(self, env, relays, dest_pseudonym, marker=None):
        return build_onion(
            b"payload!",
            [env.keys[r].public for r in relays],
            dest_pseudonym.public,
            2048,
            marker_gid=marker,
            rng=random.Random(2),
        )

    def test_destination_delivers(self):
        node, env = make_node()
        onion = build_onion(
            b"payload!",
            [env.keys[2].public],
            node.pseudonym_keypair.public,
            2048,
            rng=random.Random(2),
        )
        # Peel the relay layer externally, then hand the node the result.
        from repro.core.onion import peel, unwrap_wire
        from repro.crypto.hashes import message_id

        result = peel(onion.first_wire, env.keys[2], None, 2048, rng=random.Random(3))
        deliver_broadcast(node, env, result.inner_wire, result.inner_msg_id, ring_index=0)
        assert node.delivered == [b"payload!"]
        assert env.delivered == [(node.node_id, b"payload!")]

    def test_relay_queues_duty(self):
        node, env = make_node()
        onion = self.build_onion_for(env, [node.node_id], KeyPair.generate("sim", seed=999))
        from repro.crypto.hashes import message_id
        from repro.core.onion import unwrap_wire

        deliver_broadcast(node, env, onion.first_wire, onion.layer_msg_ids[0], ring_index=0)
        assert node.counters.get("relay_duties") == 1
        # The duty fills the next origination slot instead of noise.
        node._originate_slot()
        assert node.counters.get("relay_broadcasts") == 1
        assert node.counters.get("noise_broadcasts") is None

    def test_replay_accusation_on_duplicate_ring_copy(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        deliver_broadcast(node, env, wire, msg_id, ring_index=0)
        deliver_broadcast(node, env, wire, msg_id, ring_index=0)  # replay
        accusations = [s for s in env.sent if isinstance(s[2], Accusation)]
        assert accusations
        assert accusations[0][2].reason == "replay"


class TestOwnSends:
    def test_send_builds_and_monitors(self):
        node, env = make_node()
        dest = KeyPair.generate("sim", seed=999)
        assert node.queue_message(dest.public, 1, b"msg")
        node._originate_slot()
        assert node.counters.get("data_broadcasts") == 1
        assert len(node.relay_monitor) == 1

    def test_send_defers_without_enough_relays(self):
        node, env = make_node(member_ids=(1, 2))  # only one candidate, L=2
        dest = KeyPair.generate("sim", seed=999)
        node.queue_message(dest.public, 1, b"msg")
        node._originate_slot()
        assert node.counters.get("send_deferred_no_relays") == 1
        assert len(node.send_queue) == 1  # requeued for retry

    def test_blacklisted_relays_not_chosen(self):
        node, env = make_node()
        for candidate in (2, 3):
            node.relays_blacklist.add(candidate, "silent-relay", 0.0)
        dest = KeyPair.generate("sim", seed=999)
        node.queue_message(dest.public, 1, b"msg")
        node._originate_slot()
        sent = [s for s in env.sent if isinstance(s[2], Broadcast)]
        assert sent  # sent despite blacklist: 4,5,6 still available
        chosen = node.env.tracer.of_kind("onion-sent")
        # behaviour verified indirectly: no crash and message sent

    def test_queue_limit(self):
        node, env = make_node()
        node.config.send_queue_limit = 2
        dest = KeyPair.generate("sim", seed=999)
        assert node.queue_message(dest.public, 1, b"a")
        assert node.queue_message(dest.public, 1, b"b")
        assert not node.queue_message(dest.public, 1, b"c")


class TestAccusationHandling:
    def test_accusation_flood_deduplicated(self):
        node, env = make_node()
        accusation = Accusation(2, 3, group_domain(1), "missing-copy", None)
        node.on_message(2, accusation)
        first_flood = len([s for s in env.sent if isinstance(s[2], Accusation)])
        node.on_message(4, accusation)
        second_flood = len([s for s in env.sent if isinstance(s[2], Accusation)])
        assert first_flood > 0
        assert second_flood == first_flood  # not re-flooded

    def test_threshold_reports_eviction(self):
        node, env = make_node()
        victim = 3
        followers = env.view.successor_set(victim)
        threshold = node.config.predecessor_accusation_threshold(len(env.view))
        accusers = list(followers)[:threshold]
        for accuser in accusers:
            node.on_message(
                accuser, Accusation(accuser, victim, group_domain(1), "missing-copy", None)
            )
        assert env.evictions and env.evictions[0][1] == victim

    def test_non_follower_accusations_ignored(self):
        node, env = make_node()
        victim = 3
        non_followers = [m for m in env.view.members if m not in env.view.successor_set(victim)]
        for accuser in non_followers:
            if accuser == victim:
                continue
            node.on_message(
                accuser, Accusation(accuser, victim, group_domain(1), "missing-copy", None)
            )
        assert env.evictions == []


class TestEvictionCleanup:
    def test_on_evicted_purges_state(self):
        node, env = make_node()
        node.rate_monitor.track(3, 0.0)
        node.on_evicted(3)
        assert 3 not in node.rate_monitor.tracked()


class TestPeelDeduplication:
    def test_repeated_opaque_peel_is_skipped(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        domain = group_domain(1)
        node._try_peel(domain, wire, msg_id)
        assert env.stats.value("peel_skipped_duplicate") == 0
        node._try_peel(domain, wire, msg_id)
        node._try_peel(domain, wire, msg_id)
        assert env.stats.value("peel_skipped_duplicate") == 2

    def test_deliverable_peels_are_never_cached(self):
        # Only *opaque* outcomes may be memoised: relay/deliver peels
        # consume RNG (re-padding) and have side effects.
        node, env = make_node()
        from repro.core.onion import build_onion, unwrap_wire
        from repro.crypto.hashes import message_id

        onion = build_onion(
            b"hello",
            [env.keys[2].public],
            node.pseudonym_keypair.public,
            node.config.message_size,
            rng=random.Random(5),
        )
        relay_result = env.keys[2].unseal(unwrap_wire(onion.first_wire))
        # Extract the inner blob addressed to node 1's pseudonym key.
        from repro.core import onion as onion_mod

        parsed = onion_mod._parse_relay_layer(
            relay_result, node.config.message_size, random.Random(6)
        )
        wire = parsed.inner_wire
        msg_id = parsed.inner_msg_id
        domain = group_domain(1)
        node._try_peel(domain, wire, msg_id)
        node._try_peel(domain, wire, msg_id)
        assert len(node.delivered) == 2
        assert env.stats.value("peel_skipped_duplicate") == 0

    def test_opaque_cache_cleared_by_gc(self):
        node, env = make_node()
        from repro.core.onion import build_noise, unwrap_wire
        from repro.crypto.hashes import message_id

        wire = build_noise(2048, random.Random(1))
        msg_id = message_id(unwrap_wire(wire))
        node._try_peel(group_domain(1), wire, msg_id)
        assert node._opaque_peels
        env.now += 10_000.0
        node._ticks_since_gc = node.config.state_gc_ticks - 1  # due next tick
        node._maybe_collect_garbage()
        assert not node._opaque_peels
