"""The WAN topology layer: model determinism, link math, substrate parity.

Four contracts pinned here:

* **model** — presets are deterministic in their seed, fingerprints are
  stable identities, the explicit-matrix loader round-trips, and
  malformed matrices are typed errors;
* **lan identity** — the ``lan`` preset is algebraically the bare star
  (zero delays, inherited bandwidth), checked end to end by the
  equivalence gate (the byte-level SHA pin lives in
  tests/integration/test_determinism.py);
* **asymmetric access math** — a model's up/down bandwidths size the
  simulator's real links, verified against hand-computed arrival times;
* **substrate parity** — the chaos proxy's per-frame shaping delay and
  the simulator's organic (links + router) delay agree on the same
  model, which is what "one topology object, two substrates" means.
"""

import dataclasses

import pytest

from repro.chaos.plan import FaultPlan
from repro.chaos.proxy import ChaosProxy
from repro.core.config import RacConfig, TopologyTimerError, validate_topology_timers
from repro.core.system import RacSystem
from repro.simnet.engine import Simulator
from repro.simnet.network import DEFAULT_PROPAGATION_DELAY, StarNetwork
from repro.topo.model import (
    PRESET_NAMES,
    AccessClass,
    TopologyModel,
    frame_shaping_delay,
    from_matrix,
    hetero_access,
    lan,
    planet_diurnal,
    preset,
    wan_king,
)
from repro.topo.run import lan_equivalence, run_topo_sim, scale_timers, topo_sim_config
from repro.topo.traces import diurnal_churn_plan, publish_times


class TestModel:
    def test_presets_deterministic_in_seed(self):
        for name in PRESET_NAMES:
            a, b = preset(name, 12, seed=3), preset(name, 12, seed=3)
            assert a.latency == b.latency
            assert a.access == b.access
            assert a.fingerprint() == b.fingerprint()

    def test_seed_moves_the_sampled_presets(self):
        assert wan_king(8, seed=0).fingerprint() != wan_king(8, seed=1).fingerprint()
        assert hetero_access(8, seed=0).fingerprint() != hetero_access(8, seed=1).fingerprint()
        assert planet_diurnal(8, seed=0).fingerprint() != planet_diurnal(8, seed=1).fingerprint()

    def test_size_is_part_of_the_identity(self):
        assert wan_king(8).fingerprint() != wan_king(9).fingerprint()

    def test_lan_is_the_identity_model(self):
        model = lan(6)
        assert model.worst_rtt() == 0.0
        for i in range(6):
            assert model.up_bps(i, 1e9) == 1e9  # inherits the default
            for j in range(6):
                assert model.pair_delay(i, j) == 0.0

    def test_matrix_must_be_square_with_zero_diagonal(self):
        with pytest.raises(ValueError, match="square"):
            TopologyModel(name="bad", latency=((0.0, 0.1),), access=(AccessClass("x"),))
        with pytest.raises(ValueError, match="diagonal"):
            from_matrix([[0.1, 0.0], [0.0, 0.0]])
        with pytest.raises(ValueError, match="negative"):
            from_matrix([[0.0, -0.1], [0.0, 0.0]])

    def test_dict_and_file_round_trip(self, tmp_path):
        model = planet_diurnal(9, seed=5)
        clone = TopologyModel.from_dict(model.to_dict())
        assert clone.fingerprint() == model.fingerprint()
        path = tmp_path / "model.json"
        model.save(str(path))
        assert TopologyModel.load(str(path)).fingerprint() == model.fingerprint()

    def test_unknown_preset_lists_the_valid_names(self):
        with pytest.raises(ValueError, match="wan-king"):
            preset("metroplex", 8)

    def test_slot_wraps_population_over_matrix_size(self):
        model = wan_king(4)
        assert model.slot(0) == 0
        assert model.slot(5) == 1

    def test_worst_figures(self):
        model = from_matrix(
            [[0.0, 0.010], [0.030, 0.0]],
            access=(
                AccessClass("a", up_bps=1e6, down_bps=4e6),
                AccessClass("b", up_bps=2e6, down_bps=8e6),
            ),
        )
        assert model.worst_rtt() == pytest.approx(0.040)
        # slowest up = 1e6, slowest down = 4e6, for 1000 bytes:
        assert model.worst_one_way_serialization(1000, 1e9) == pytest.approx(
            8000 / 1e6 + 8000 / 4e6
        )


class TestFrameShaping:
    def test_surplus_over_nominal_plus_pair_delay(self):
        model = from_matrix(
            [[0.0, 0.020], [0.020, 0.0]],
            access=(
                AccessClass("slow", up_bps=1e6, down_bps=2e6),
                AccessClass("slow", up_bps=1e6, down_bps=2e6),
            ),
        )
        bits = 1250 * 8
        expected = 0.020 + (bits / 1e6 + bits / 2e6 - 2 * bits / 1e8)
        assert frame_shaping_delay(model, 0, 1, 1250, 1e8) == pytest.approx(expected)

    def test_faster_access_than_nominal_never_goes_negative(self):
        model = from_matrix(
            [[0.0, 0.005], [0.005, 0.0]],
            access=(AccessClass("fat", up_bps=1e9, down_bps=1e9),) * 2,
        )
        assert frame_shaping_delay(model, 0, 1, 1250, 1e6) == pytest.approx(0.005)


class TestSimSubstrate:
    def test_asymmetric_access_sizes_the_links(self):
        # 1250 B: 10 ms up at 1 Mb/s, 5 ms down at 2 Mb/s, 20 ms pair
        # delay — every term visible in the arrival time.
        model = from_matrix(
            [[0.0, 0.020], [0.020, 0.0]],
            access=(
                AccessClass("up1", up_bps=1e6, down_bps=8e6),
                AccessClass("dn2", up_bps=4e6, down_bps=2e6),
            ),
        )
        sim = Simulator()
        net = StarNetwork(sim, bandwidth_bps=1_000_000, topology=model)
        arrival = []
        net.attach(1, lambda p: None)  # slot 0
        net.attach(2, lambda p: arrival.append(sim.now))  # slot 1
        net.send(1, 2, "x", 1250)
        sim.run()
        assert arrival[0] == pytest.approx(
            0.010 + 0.020 + DEFAULT_PROPAGATION_DELAY + 0.005
        )
        assert net.topology_slot(1) == 0 and net.topology_slot(2) == 1
        assert net.pair_delays[(1, 2)][0] == 1
        assert net.pair_delays[(1, 2)][1] == pytest.approx(0.020)

    def test_sim_delta_matches_frame_shaping_delay(self):
        # The parity contract: the organic sim realization (sized links
        # + router pair delay) adds exactly what frame_shaping_delay
        # computes for the proxy, for the same model and frame. Exact
        # parity requires access links no faster than nominal — the
        # proxy can only add delay, never speed a loopback frame up.
        model = from_matrix(
            [[0.0, 0.015], [0.015, 0.0]],
            access=(AccessClass("dsl", up_bps=2e6, down_bps=5e6),) * 2,
        )
        size, nominal = 900, 10_000_000.0

        def arrival(topology):
            sim = Simulator()
            net = StarNetwork(sim, bandwidth_bps=nominal, topology=topology)
            seen = []
            net.attach(1, lambda p: None)
            net.attach(2, lambda p: seen.append(sim.now))
            net.send(1, 2, "x", size)
            sim.run()
            return seen[0]

        delta = arrival(model) - arrival(None)
        assert delta == pytest.approx(frame_shaping_delay(model, 0, 1, size, nominal))

    def test_rejoining_node_keeps_its_slot(self):
        model = hetero_access(4)
        sim = Simulator()
        net = StarNetwork(sim, bandwidth_bps=1e9, topology=model)
        for nid in (10, 11, 12):
            net.attach(nid, lambda p: None)
        assert net.topology_slot(11) == 1
        net.detach(11)
        net.attach(11, lambda p: None)  # crash-restart: same slot back
        assert net.topology_slot(11) == 1
        net.attach(13, lambda p: None)  # newcomers keep advancing
        assert net.topology_slot(13) == 3


class TestProxyParity:
    def _proxy(self, model, node_ids, bandwidth):
        plan = FaultPlan(seed=0, horizon=10.0)
        return ChaosProxy(plan, node_ids, bandwidth_bps=bandwidth, topology=model)

    def test_topology_delay_is_frame_shaping_delay(self):
        model = wan_king(4, seed=2)
        proxy = self._proxy(model, [100, 101, 102, 103], 100e6)
        frame = b"z" * 500
        assert proxy._topology_delay(100, 103, len(frame)) == pytest.approx(
            frame_shaping_delay(model, 0, 3, len(frame) + 4, 100e6)
        )

    def test_two_node_exchange_shapes_like_the_sim(self):
        # The same 2-node frame on both substrates' arithmetic: the
        # proxy's shaping delay equals the sim's organic delta for the
        # proxy's framed size (payload + 4-byte length prefix).
        model = from_matrix(
            [[0.0, 0.025], [0.025, 0.0]],
            access=(AccessClass("cable", up_bps=3e6, down_bps=6e6),) * 2,
        )
        nominal = 20_000_000.0
        payload = b"q" * 800
        proxy = self._proxy(model, [7, 8], nominal)
        shaped = proxy._topology_delay(7, 8, len(payload))

        def arrival(topology):
            sim = Simulator()
            net = StarNetwork(sim, bandwidth_bps=nominal, topology=topology)
            seen = []
            net.attach(7, lambda p: None)
            net.attach(8, lambda p: seen.append(sim.now))
            net.send(7, 8, "x", len(payload) + 4)
            sim.run()
            return seen[0]

        assert shaped == pytest.approx(arrival(model) - arrival(None))

    def test_fifo_clamp_keeps_pair_order(self):
        model = hetero_access(2, seed=1)
        proxy = self._proxy(model, [1, 2], 1e6)
        big = proxy._fifo_clamp(1, 2, 0.0, proxy._topology_delay(1, 2, 5000))
        small = proxy._fifo_clamp(1, 2, 0.001, proxy._topology_delay(1, 2, 10))
        assert 0.001 + small >= big  # the small frame cannot overtake


class TestTimerContract:
    def test_wan_rejects_lan_scale_timers(self):
        config = RacConfig.small(relay_timeout=0.2, predecessor_timeout=0.1)
        with pytest.raises(TopologyTimerError, match="relay_timeout"):
            validate_topology_timers(config, planet_diurnal(10), 0.05)

    def test_rto_clamp_must_cover_the_worst_rtt(self):
        config = RacConfig.small(
            relay_timeout=60.0, predecessor_timeout=60.0, transport_rto_max=0.05
        )
        with pytest.raises(TopologyTimerError, match="transport_rto_max"):
            validate_topology_timers(config, planet_diurnal(10), 0.05)

    def test_topo_defaults_pass_every_preset(self):
        config = topo_sim_config()
        for name in PRESET_NAMES:
            validate_topology_timers(config, preset(name, 10), 0.05)

    def test_system_enforces_at_bootstrap(self):
        config = topo_sim_config(relay_timeout=0.2)
        system = RacSystem(config, seed=0, topology=wan_king(10))
        with pytest.raises(TopologyTimerError):
            system.bootstrap(10)

    def test_enforcement_is_bypassable_for_probes(self):
        config = topo_sim_config(relay_timeout=0.2)
        system = RacSystem(
            config, seed=0, topology=wan_king(10), enforce_topology_timers=False
        )
        assert len(system.bootstrap(10)) == 10

    def test_scale_timers_scales_only_the_misbehaviour_timers(self):
        config = topo_sim_config()
        half = scale_timers(config, 0.5)
        assert half.relay_timeout == pytest.approx(config.relay_timeout / 2)
        assert half.predecessor_timeout == pytest.approx(config.predecessor_timeout / 2)
        assert half.rate_window == pytest.approx(config.rate_window / 2)
        assert half.transport_rto_max == config.transport_rto_max
        with pytest.raises(ValueError):
            scale_timers(config, 0.0)


class TestTraces:
    def test_churn_plan_is_deterministic_and_valid(self):
        model = planet_diurnal(12, seed=0)
        a = diurnal_churn_plan(model, 12, 20.0, seed=4)
        b = diurnal_churn_plan(model, 12, 20.0, seed=4)
        assert a.fingerprint() == b.fingerprint()
        a.validate(12)
        assert a.schedule()  # the trace actually crashes someone
        assert a.fingerprint() != diurnal_churn_plan(model, 12, 20.0, seed=5).fingerprint()

    def test_churn_never_sleeps_a_whole_region(self):
        model = planet_diurnal(12, seed=0)
        plan = diurnal_churn_plan(model, 12, 20.0, seed=0, churn_fraction=1.0)
        sleepers = {event.node for event in plan.schedule() if event.kind == "crash"}
        for region in model.regions():
            members = {
                i for i in range(12) if model.region(model.slot(i)) == region
            }
            assert members - sleepers, f"region {region} fully asleep"

    def test_publish_times_flat_amplitude_is_fixed_interval(self):
        times = publish_times(4.0, 0.5, amplitude=0.0, start=0.2)
        assert times[0] == pytest.approx(0.2)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.5) for g in gaps)

    def test_publish_times_diurnal_modulates_the_rate(self):
        times = publish_times(20.0, 0.25, amplitude=0.8)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 1  # the rate actually varies
        assert all(0.0 < t < 20.0 for t in times)
        assert times == publish_times(20.0, 0.25, amplitude=0.8)  # deterministic


class TestRunHarness:
    def test_lan_equivalence_gate(self):
        plain, lan_digest = lan_equivalence(nodes=6, horizon=2.0)
        assert plain == lan_digest

    def test_wan_run_reports_metrics_and_stays_clean(self):
        out = run_topo_sim(wan_king(8), nodes=8, horizon=6.0, seed=0)
        assert out.ok
        assert out.deliveries > 0
        assert out.latency_mean_s > 0.0
        assert out.honest_evictions == 0
        metrics = out.metrics()
        assert metrics["violations"] == 0.0
        assert metrics["detection_time_s"] == -1.0

    def test_churn_run_defaults_to_churn_tolerant_timers(self):
        # Diurnal reboots under WAN delay must never read as freeriding:
        # with no explicit config, churn=True picks topo_churn_config
        # (chaos-scale timers above the trace's reboot windows).
        out = run_topo_sim(planet_diurnal(9), nodes=9, horizon=12.0, seed=1, churn=True)
        assert out.ok, out.report.describe()
        assert out.honest_evictions == 0

    def test_victim_behaviours_are_routed_to_the_campaign_layer(self):
        with pytest.raises(ValueError, match="victim"):
            run_topo_sim(lan(8), nodes=8, horizon=4.0, seed=0, deviant="false-accuser")
