"""Unit tests for the chaos layer: plans, proxy shaping, invariants.

The determinism contract under test: one :class:`FaultPlan` is a single
source of truth for *what happens when* — the same builder calls (or
the same storm seed) produce the identical normalized schedule and
fingerprint, the sim compiler arms exactly that schedule, and the live
proxy draws all its randomness from the plan seed, so two runs of the
same plan shape traffic identically.
"""

import asyncio

import pytest

from repro.chaos.invariants import InvariantChecker
from repro.chaos.plan import FaultPlan, smoke_plan, storm_plan
from repro.chaos.proxy import ChaosProxy
from repro.simnet.stats import StatsRegistry

NODE_IDS = [0x10, 0x11, 0x12, 0x13, 0x14, 0x15]


class TestPlanDeterminism:
    def test_same_builder_calls_same_fingerprint(self):
        plans = [
            FaultPlan(seed=5, horizon=20.0)
            .crash_restart(1, at=2.0, downtime=1.0)
            .partition([0, 1], [2, 3], at=5.0, duration=2.0)
            .loss(0.1, at=8.0, duration=2.0)
            for _ in range(2)
        ]
        assert plans[0].fingerprint() == plans[1].fingerprint()
        assert [e.describe() for e in plans[0].schedule()] == [
            e.describe() for e in plans[1].schedule()
        ]

    def test_storm_same_seed_identical_schedule(self):
        a = storm_plan(8, 30.0, seed=42)
        b = storm_plan(8, 30.0, seed=42)
        assert a.fingerprint() == b.fingerprint()
        assert [e.describe() for e in a.schedule()] == [e.describe() for e in b.schedule()]

    def test_storm_different_seed_differs(self):
        assert storm_plan(8, 30.0, seed=1).fingerprint() != storm_plan(8, 30.0, seed=2).fingerprint()

    def test_schedule_is_sorted_by_time(self):
        plan = (
            FaultPlan(horizon=20.0)
            .loss(0.1, at=9.0, duration=1.0)
            .crash(0, at=3.0)
            .partition([0], [1], at=6.0, duration=1.0)
        )
        times = [e.at for e in plan.schedule()]
        assert times == sorted(times)

    def test_validate_rejects_out_of_range_index(self):
        plan = FaultPlan(horizon=20.0).crash(9, at=1.0)
        with pytest.raises(ValueError, match="node index 9"):
            plan.validate(4)

    def test_validate_rejects_events_past_horizon(self):
        plan = FaultPlan(horizon=10.0).crash(0, at=10.0)
        with pytest.raises(ValueError, match="horizon"):
            plan.validate(4)

    def test_runners_validate_before_touching_the_population(self):
        # An out-of-range index must surface as the typed ValueError,
        # not an IndexError from deep inside the checker.
        from repro.chaos import run_chaos_sim

        plan = FaultPlan(horizon=10.0).crash(7, at=2.0)
        with pytest.raises(ValueError, match="node index 7"):
            run_chaos_sim(plan, nodes=4, seed=0)

    def test_fault_windows_exclude_unhealing_events(self):
        plan = (
            FaultPlan(horizon=20.0)
            .crash(0, at=1.0)  # permanent: never heals
            .crash_restart(1, at=2.0, downtime=1.0)
            .directory_outage(at=3.0, duration=1.0)  # does not gate delivery
            .partition([0], [1], at=5.0, duration=2.0)
        )
        kinds = [kind for kind, _, _ in plan.fault_windows()]
        assert kinds == ["crash", "partition"]
        assert plan.crashed_forever() == [0]

    def test_builder_rejects_nonsense(self):
        plan = FaultPlan(horizon=10.0)
        with pytest.raises(ValueError):
            plan.partition([0, 1], [1, 2], at=1.0, duration=1.0)  # overlap
        with pytest.raises(ValueError):
            plan.loss(1.5, at=1.0, duration=1.0)
        with pytest.raises(ValueError):
            plan.crash_restart(0, at=1.0, downtime=0.0)
        with pytest.raises(ValueError):
            plan.reorder(0, window=1, at=1.0, duration=1.0)


class TestCompileSim:
    def test_sim_runs_are_deterministic_under_a_plan(self):
        from repro.chaos.run import run_chaos_sim

        plan = smoke_plan(6, 12.0)
        a = run_chaos_sim(plan, nodes=6, seed=3)
        b = run_chaos_sim(plan, nodes=6, seed=3)
        assert a.deliveries == b.deliveries
        assert a.counters == b.counters
        assert a.plan_fingerprint == b.plan_fingerprint == plan.fingerprint()

    def test_live_only_events_leave_the_sim_untouched(self):
        """A plan holding only live-only events compiles to notes and
        nothing else: the armed system's run is byte-identical to an
        unplanned one (the determinism-fingerprint guarantee)."""
        from repro.chaos.run import chaos_sim_config, run_chaos_sim

        live_only = (
            FaultPlan(horizon=6.0)
            .reorder(0, window=4, at=1.0, duration=1.0)
            .directory_outage(at=2.0, duration=1.0)
        )
        empty = FaultPlan(horizon=6.0)
        config = chaos_sim_config()
        armed = run_chaos_sim(live_only, nodes=6, seed=3, config=config)
        plain = run_chaos_sim(empty, nodes=6, seed=3, config=config)
        assert len(armed.notes) == 2
        assert armed.deliveries == plain.deliveries
        assert armed.counters == plain.counters

    def test_compile_notes_name_the_approximated_events(self):
        from repro.core.system import RacSystem
        from repro.chaos.run import chaos_sim_config

        system = RacSystem(chaos_sim_config(), seed=0)
        node_ids = system.bootstrap(6)
        plan = (
            FaultPlan(horizon=20.0)
            .crash_restart(2, at=1.0, downtime=1.0)
            .reorder(0, window=4, at=2.0, duration=1.0)
        )
        notes = plan.compile_sim(system, node_ids)
        assert any("link outage" in note for note in notes)
        assert any("live substrate only" in note for note in notes)


def _shim(plan: FaultPlan) -> "tuple[ChaosProxy, StatsRegistry]":
    """An unstarted proxy (clock pinned at t=0) plus node 0's stats."""
    proxy = ChaosProxy(plan, NODE_IDS, bandwidth_bps=1e6)
    stats = StatsRegistry()
    proxy.register(NODE_IDS[0], stats)
    return proxy, stats


class TestProxyShaping:
    def test_partition_blackholes_both_directions(self):
        plan = FaultPlan(horizon=10.0).partition([0, 1, 2], [3, 4, 5], at=0.0, duration=5.0)
        proxy, stats = _shim(plan)
        sent = []
        proxy.filter(NODE_IDS[0], NODE_IDS[3], b"x", sent.append)  # across the cut
        proxy.filter(NODE_IDS[3], NODE_IDS[0], b"y", sent.append)  # reverse direction
        proxy.filter(NODE_IDS[0], NODE_IDS[1], b"z", sent.append)  # same side
        assert sent == [b"z"]
        assert stats.as_dict()["chaos_frames_blackholed"] == 1  # node 0's verdicts only

    def test_loss_pattern_is_seed_deterministic(self):
        def drops(seed):
            plan = FaultPlan(seed=seed, horizon=10.0).loss(0.5, at=0.0, duration=5.0)
            proxy, _ = _shim(plan)
            pattern = []
            for k in range(64):
                out = []
                proxy.filter(NODE_IDS[0], NODE_IDS[1], b"%d" % k, out.append)
                pattern.append(bool(out))
            return pattern

        assert drops(7) == drops(7)
        assert drops(7) != drops(8)
        assert any(drops(7)) and not all(drops(7))  # rate actually bites

    def test_loss_scoped_to_one_node(self):
        plan = FaultPlan(seed=0, horizon=10.0).loss(0.99, at=0.0, duration=5.0, node=2)
        proxy, _ = _shim(plan)
        out = []
        for _ in range(32):
            proxy.filter(NODE_IDS[0], NODE_IDS[1], b"x", out.append)  # unscoped pair
        assert len(out) == 32

    def test_reorder_window_flushes_complete_and_shuffled(self):
        plan = FaultPlan(seed=3, horizon=10.0).reorder(0, window=4, at=0.0, duration=5.0)
        proxy, stats = _shim(plan)
        out = []
        frames = [b"%d" % k for k in range(8)]
        for frame in frames:
            proxy.filter(NODE_IDS[0], NODE_IDS[1], frame, out.append)
        assert sorted(out) == sorted(frames)  # nothing lost
        assert out != frames  # order actually changed
        assert stats.as_dict()["chaos_frames_reordered"] == 8

    def test_close_flushes_held_frames(self):
        plan = FaultPlan(horizon=10.0).reorder(0, window=64, at=0.0, duration=5.0)
        proxy, _ = _shim(plan)
        out = []
        proxy.filter(NODE_IDS[0], NODE_IDS[1], b"held", out.append)
        assert out == []
        proxy.close()
        assert out == [b"held"]

    def test_degrade_delay_is_the_serialization_surplus(self):
        plan = FaultPlan(horizon=10.0).degrade(1, factor=0.5, at=0.0, duration=5.0)
        proxy, _ = _shim(plan)
        size = 996  # (996 + 4) * 8 = 8000 bits
        delay = proxy._degrade_delay(NODE_IDS[0], NODE_IDS[1], size, 0.0)
        assert delay == pytest.approx(8000 / (1e6 * 0.5) - 8000 / 1e6)
        assert proxy._degrade_delay(NODE_IDS[2], NODE_IDS[3], size, 0.0) == 0.0

    def test_inactive_windows_pass_through(self):
        plan = (
            FaultPlan(horizon=20.0)
            .partition([0], [1], at=5.0, duration=1.0)
            .loss(0.99, at=5.0, duration=1.0)
        )
        proxy, _ = _shim(plan)  # clock pinned at 0: both windows inactive
        out = []
        proxy.filter(NODE_IDS[0], NODE_IDS[1], b"x", out.append)
        assert out == [b"x"]


class TestInvariantChecker:
    def test_honest_eviction_is_a_named_violation(self):
        checker = InvariantChecker([1, 2, 3])
        checker.record_eviction(4.5, reporter=2, accused=1, kind="predecessor")
        checker.finish(10.0)
        report = checker.check()
        assert not report.ok
        assert report.first.invariant == "safety-eviction"
        assert "0x1" in report.first.event and "predecessor" in report.first.event

    def test_deviant_and_downed_evictions_are_excused(self):
        checker = InvariantChecker([1, 2, 3], deviants=[9])
        checker.note_crash(1, 2.0)
        checker.note_restart(1, 4.0)
        checker.record_eviction(3.0, reporter=2, accused=1, kind="relay")  # down
        checker.record_eviction(5.0, reporter=2, accused=9, kind="relay")  # deviant
        checker.finish(10.0)
        assert checker.check().ok

    def test_eviction_after_restart_is_not_excused(self):
        checker = InvariantChecker([1, 2, 3])
        checker.note_crash(1, 2.0)
        checker.note_restart(1, 4.0)
        checker.record_eviction(6.0, reporter=2, accused=1, kind="relay")
        checker.finish(10.0)
        assert not checker.check().ok

    def test_blacklist_residue_is_a_violation(self):
        checker = InvariantChecker([1, 2, 3])
        checker.finish(10.0)
        report = checker.check(blacklists={2: [1]})
        assert [v.invariant for v in report.violations] == ["safety-blacklist"]

    def test_liveness_needs_a_delivery_inside_the_heal_bound(self):
        checker = InvariantChecker([1, 2], heal_bound=2.0)
        checker.note_fault_window("partition", 1.0, 3.0)
        checker.record_delivery(0.5, 1, b"before the fault")
        checker.finish(10.0)
        report = checker.check()
        assert [v.invariant for v in report.violations] == ["liveness"]
        assert "partition" in report.first.event

        healed = InvariantChecker([1, 2], heal_bound=2.0)
        healed.note_fault_window("partition", 1.0, 3.0)
        healed.record_delivery(4.0, 1, b"after the heal")
        healed.finish(10.0)
        assert healed.check().ok

    def test_liveness_bound_outside_the_run_is_skipped(self):
        checker = InvariantChecker([1, 2], heal_bound=5.0)
        checker.note_fault_window("loss", 1.0, 8.0)
        checker.finish(10.0)  # 8 + 5 > 10: cannot be judged
        report = checker.check()
        assert report.ok
        assert report.checks["heal_windows"] == 0


class TestDirectoryClientBounds:
    def test_unreachable_directory_raises_typed_error(self):
        from repro.live.directory import DirectoryClient, DirectoryUnavailable

        async def go():
            client = DirectoryClient(
                "127.0.0.1", 1, connect_timeout=0.2, retries=1, retry_delay=0.01
            )
            with pytest.raises(DirectoryUnavailable):
                await client.wait_roster(1, timeout=1.0)

        asyncio.run(go())
