"""Unit tests for blacklists and the eviction tracker."""

import pytest

from repro.core.blacklist import Blacklist, EvictionTracker
from repro.core.config import RacConfig
from repro.core.messages import group_domain


class TestBlacklist:
    def test_add_and_contains(self):
        blacklist = Blacklist()
        assert blacklist.add(7, "silent-relay", now=1.0)
        assert 7 in blacklist
        assert blacklist.entry(7).reason == "silent-relay"

    def test_second_add_is_noop(self):
        blacklist = Blacklist()
        blacklist.add(7, "a", 1.0)
        assert not blacklist.add(7, "b", 2.0)
        assert blacklist.entry(7).reason == "a"

    def test_members_sorted(self):
        blacklist = Blacklist()
        blacklist.add(9, "x", 0.0)
        blacklist.add(3, "x", 0.0)
        assert blacklist.members() == (3, 9)

    def test_discard(self):
        blacklist = Blacklist()
        blacklist.add(7, "x", 0.0)
        blacklist.discard(7)
        assert 7 not in blacklist and len(blacklist) == 0


def make_tracker(pred_threshold=2, relay_threshold=3):
    return EvictionTracker(
        predecessor_threshold=lambda domain: pred_threshold,
        relay_threshold=lambda size: relay_threshold,
    )


DOMAIN = group_domain(1)


class TestPredecessorEvidence:
    def test_threshold_crossing_evicts(self):
        tracker = make_tracker(pred_threshold=2)
        assert tracker.record_predecessor_accusation(10, 99, DOMAIN, True) is None
        assert tracker.record_predecessor_accusation(11, 99, DOMAIN, True) == 99
        assert 99 in tracker.evicted

    def test_non_followers_ignored(self):
        tracker = make_tracker(pred_threshold=1)
        assert tracker.record_predecessor_accusation(10, 99, DOMAIN, False) is None
        assert 99 not in tracker.evicted

    def test_duplicate_accusers_count_once(self):
        tracker = make_tracker(pred_threshold=2)
        tracker.record_predecessor_accusation(10, 99, DOMAIN, True)
        assert tracker.record_predecessor_accusation(10, 99, DOMAIN, True) is None
        assert tracker.predecessor_accuser_count(99, DOMAIN) == 1

    def test_self_accusation_ignored(self):
        tracker = make_tracker(pred_threshold=1)
        assert tracker.record_predecessor_accusation(99, 99, DOMAIN, True) is None

    def test_domains_tally_separately(self):
        tracker = make_tracker(pred_threshold=2)
        other = group_domain(2)
        tracker.record_predecessor_accusation(10, 99, DOMAIN, True)
        assert tracker.record_predecessor_accusation(11, 99, other, True) is None
        assert tracker.predecessor_accuser_count(99, DOMAIN) == 1
        assert tracker.predecessor_accuser_count(99, other) == 1

    def test_already_evicted_ignored(self):
        tracker = make_tracker(pred_threshold=1)
        tracker.record_predecessor_accusation(10, 99, DOMAIN, True)
        assert tracker.record_predecessor_accusation(11, 99, DOMAIN, True) is None


class TestRelayEvidence:
    def test_round_counting(self):
        tracker = make_tracker(relay_threshold=3)
        lists = [(99,), (99,), (), (5,)]
        assert tracker.record_relay_round(1, 4, lists) == []
        assert tracker.relay_vote_count(99, 1) == 2

    def test_threshold_crossing_evicts(self):
        tracker = make_tracker(relay_threshold=3)
        lists = [(99,), (99,), (99, 5), ()]
        assert tracker.record_relay_round(1, 4, lists) == [99]
        assert 99 in tracker.evicted

    def test_duplicates_within_one_list_count_once(self):
        tracker = make_tracker(relay_threshold=2)
        lists = [(99, 99, 99), ()]
        tracker.record_relay_round(1, 2, lists)
        assert tracker.relay_vote_count(99, 1) == 1

    def test_votes_do_not_accumulate_across_rounds(self):
        # The paper requires f*G+1 *distinct* accusers; counting the
        # same accuser's list round after round would let one opponent
        # evict anyone eventually.
        tracker = make_tracker(relay_threshold=2)
        for _ in range(5):
            tracker.record_relay_round(1, 3, [(99,), (), ()])
        assert 99 not in tracker.evicted

    def test_exact_quorum_boundary(self):
        # Pin the f*G arithmetic against the real config: with G=12 and
        # f=0.25 the quorum is floor(0.25*12)+1 = 4, so exactly
        # floor(f*G) = 3 lists — a full-strength colluding coalition —
        # must NOT evict, and one more honest list must.
        config = RacConfig.small(assumed_opponent_fraction=0.25)
        threshold = config.relay_accusation_threshold(12)
        assert threshold == 4
        tracker = EvictionTracker(
            predecessor_threshold=lambda domain: 99,
            relay_threshold=config.relay_accusation_threshold,
        )
        at_bound = [(99,)] * (threshold - 1) + [()] * 9
        assert tracker.record_relay_round(1, 12, at_bound) == []
        assert 99 not in tracker.evicted
        over_bound = [(99,)] * threshold + [()] * 8
        assert tracker.record_relay_round(1, 12, over_bound) == [99]

    def test_identical_lists_from_distinct_contributors_each_count(self):
        # Lists are anonymous: the tracker cannot tell two members with
        # identical grievances apart, so each list counts. The
        # exactly-one-contribution-per-member invariant is the shuffle
        # layer's job (RacSystem._run_group_shuffle collects one
        # contribution per active member), which is what makes
        # list-count == distinct-accuser-count.
        tracker = make_tracker(relay_threshold=2)
        assert tracker.record_relay_round(1, 3, [(99,), (99,), ()]) == [99]

    def test_eviction_stable_across_repeated_identical_rounds(self):
        # Replaying the same winning round must neither re-evict nor
        # flip any state: `evicted` is monotone and the per-round vote
        # tally keeps the maximum seen.
        tracker = make_tracker(relay_threshold=2)
        lists = [(99,), (99, 5), ()]
        assert tracker.record_relay_round(1, 3, lists) == [99]
        for _ in range(3):
            assert tracker.record_relay_round(1, 3, lists) == []
        assert tracker.evicted == {99}
        assert tracker.relay_vote_count(99, 1) == 2
        assert tracker.relay_vote_count(5, 1) == 1

    def test_forget_clears_evidence(self):
        tracker = make_tracker(pred_threshold=3)
        tracker.record_predecessor_accusation(10, 99, DOMAIN, True)
        tracker.forget(99)
        assert tracker.predecessor_accuser_count(99, DOMAIN) == 0
