"""Unit tests for log-space probabilities."""

import math

import pytest

from repro.analysis.probability import ONE, ZERO, LogProb


class TestConstruction:
    def test_from_float(self):
        assert LogProb.from_float(0.1).log10 == pytest.approx(-1.0)

    def test_from_zero(self):
        assert LogProb.from_float(0.0) is ZERO

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LogProb.from_float(1.5)
        with pytest.raises(ValueError):
            LogProb.from_float(-0.1)

    def test_product_underflow_safe(self):
        # 2000 factors of 0.1: value is 1e-2000, far below float range.
        p = LogProb.product([0.1] * 2000)
        assert p.log10 == pytest.approx(-2000.0)
        assert p.value == 0.0  # underflows as a float, by design

    def test_product_with_zero_factor(self):
        assert LogProb.product([0.5, 0.0, 0.9]) is ZERO

    def test_product_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            LogProb.product([1.5])


class TestArithmetic:
    def test_multiplication(self):
        p = LogProb.from_float(0.1) * LogProb.from_float(0.01)
        assert p.log10 == pytest.approx(-3.0)

    def test_scalar_multiplication(self):
        p = LogProb.from_float(1e-10) * 50
        assert p.log10 == pytest.approx(math.log10(5e-9))

    def test_scalar_zero(self):
        assert (LogProb.from_float(0.5) * 0) is ZERO

    def test_negative_scalar_rejected(self):
        with pytest.raises(ValueError):
            LogProb.from_float(0.5) * -2

    def test_ordering(self):
        assert LogProb.from_float(1e-10) < LogProb.from_float(1e-5)
        assert ZERO < LogProb.from_float(1e-300)
        assert LogProb.from_float(0.5) > 0.1

    def test_equality_with_floats(self):
        assert LogProb.from_float(0.5) == 0.5
        assert ZERO == 0.0


class TestRendering:
    def test_paper_style_tiny(self):
        assert str(LogProb(-1019.2366)) == "5.8e-1020"

    def test_zero(self):
        assert str(ZERO) == "0"

    def test_moderate_values(self):
        assert str(LogProb.from_float(0.53)) == "0.53"

    def test_mantissa_rounding_carry(self):
        # 9.97e-7 must not render as 10.0e-7.
        assert str(LogProb.from_float(9.97e-7)) == "1.0e-6"

    def test_value_roundtrip(self):
        assert LogProb.from_float(0.25).value == pytest.approx(0.25)

    def test_one(self):
        assert ONE.value == 1.0
