"""Unit tests for the simulation snapshot layer.

The contract (see ``repro/simnet/snapshot.py``): snapshots are
byte-deterministic — the same simulation state always serialises to the
same blob, and ``snapshot(restore(blob)) == blob`` — and taking one
never perturbs the live system. Checkpoint/resume and the sweep
orchestrator both build on these invariants.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.simnet.engine import Simulator
from repro.simnet.snapshot import (
    SNAPSHOT_MAGIC,
    SnapshotError,
    load_snapshot,
    restore_system,
    save_snapshot,
    snapshot_system,
    verify_roundtrip,
)


def _mid_run_system(seed: int = 11, nodes: int = 6) -> RacSystem:
    system = RacSystem(RacConfig.small(), seed=seed)
    ids = system.bootstrap(nodes)
    for index, src in enumerate(ids):
        system.send(src, ids[(index + 1) % len(ids)], f"snap/{index}".encode())
    system.run(1.0)
    return system


def _noop() -> None:
    pass


class TestSimulatorPickling:
    def test_sequence_counter_survives_pickling(self):
        sim = Simulator()
        sim.schedule(1.0, _noop)
        sim.schedule(2.0, _noop)
        clone = pickle.loads(pickle.dumps(sim))
        # Scheduling on the clone exercises the rebuilt itertools
        # counter (it would raise if _seq were restored as a bare int).
        clone.schedule(3.0, _noop)
        clone.run(until=5.0)
        assert clone.events_processed == 3
        assert clone.now == 5.0

    def test_original_counter_still_monotonic_after_getstate(self):
        sim = Simulator()
        sim.schedule(1.0, _noop)
        pickle.dumps(sim)
        # __getstate__ rebuilds the itertools counter; scheduling on the
        # live simulator afterwards must not reuse sequence numbers.
        sim.schedule(2.0, _noop)
        sim.run(until=3.0)
        assert sim.events_processed == 2


class TestSnapshotInvariants:
    def test_blob_has_magic_and_verifies(self):
        blob = snapshot_system(_mid_run_system(), verify=True)
        assert blob.startswith(SNAPSHOT_MAGIC)
        verify_roundtrip(blob)

    def test_snapshot_is_byte_deterministic(self):
        system = _mid_run_system()
        assert snapshot_system(system) == snapshot_system(system)

    def test_snapshot_of_restore_is_identity(self):
        blob = snapshot_system(_mid_run_system())
        assert snapshot_system(restore_system(blob)) == blob

    def test_two_identically_seeded_runs_snapshot_identically(self):
        assert snapshot_system(_mid_run_system(seed=5)) == snapshot_system(
            _mid_run_system(seed=5)
        )

    def test_different_seeds_snapshot_differently(self):
        assert snapshot_system(_mid_run_system(seed=5)) != snapshot_system(
            _mid_run_system(seed=6)
        )

    def test_snapshotting_does_not_perturb_the_live_run(self):
        untouched = _mid_run_system()
        snapshotted = _mid_run_system()
        snapshot_system(snapshotted, verify=True)
        untouched.run(2.0)
        snapshotted.run(2.0)
        assert untouched.now == snapshotted.now
        assert untouched.sim.events_processed == snapshotted.sim.events_processed
        assert untouched.stats_report() == snapshotted.stats_report()

    def test_restored_system_continues_like_the_original(self):
        original = _mid_run_system()
        restored = restore_system(snapshot_system(original))
        original.run(2.0)
        restored.run(2.0)
        assert restored.now == original.now
        assert restored.sim.events_processed == original.sim.events_processed
        assert restored.stats_report() == original.stats_report()
        for node_id in original.nodes:
            assert restored.nodes[node_id].delivered == original.nodes[node_id].delivered


class TestSnapshotErrors:
    def test_restore_rejects_wrong_magic(self):
        with pytest.raises(SnapshotError):
            restore_system(b"NOTASNAP" + pickle.dumps(object))

    def test_restore_rejects_truncated_blob(self):
        with pytest.raises(SnapshotError):
            restore_system(SNAPSHOT_MAGIC[:4])

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            load_snapshot(str(tmp_path / "missing.snap"))


class TestSnapshotFiles:
    def test_save_load_round_trip(self, tmp_path):
        system = _mid_run_system()
        path = str(tmp_path / "run.snap")
        size = save_snapshot(system, path, verify=True)
        assert load_snapshot(path).now == system.now
        with open(path, "rb") as fh:
            blob = fh.read()
        assert len(blob) == size
        assert blob.startswith(SNAPSHOT_MAGIC)

    def test_save_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "run.snap"
        save_snapshot(_mid_run_system(), str(path))
        assert [p.name for p in tmp_path.iterdir()] == ["run.snap"]

    def test_plain_objects_snapshot_too(self, tmp_path):
        # Checkpoints store (system, progress) tuples, not bare systems.
        payload = ({"t_done": 1.5}, [1, 2, 3])
        path = str(tmp_path / "obj.snap")
        save_snapshot(payload, path, verify=True)
        assert load_snapshot(path) == payload
