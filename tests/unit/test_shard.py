"""Unit tests for the group-sharded simulator (repro.simnet.shard).

Covers the partitioner (group snapshots, bundle planning, the
bundle-local directory), the ScaleSpec manifest, the shard system's
cross-shard hooks, and the cache-hygiene contract at shard-worker
boundaries.
"""

import random

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.crypto import clear_process_caches
from repro.crypto.keys import _KEM_CACHE
from repro.groups import (
    BundleDirectory,
    GroupSpec,
    ShardPartitionError,
    plan_bundles,
)
from repro.simnet.shard import (
    ScaleSpec,
    ZERO_FINGERPRINT,
    behaviors_for,
    build_fault_plan,
    build_shard_system,
    canonical_blob,
    chain_fingerprint,
    epoch_step,
    filter_plan_events,
    group_shuffle_rng,
    plan_population,
    sort_barrier_records,
)


def _specs(weights):
    specs = []
    span = (1 << 128) // len(weights)
    for gid, weight in enumerate(weights, start=1):
        lo = (gid - 1) * span
        members = tuple(range(gid * 1000, gid * 1000 + weight))
        specs.append(GroupSpec(gid=gid, lo=lo, hi=lo + span - 1, members=members))
    return specs


class TestPlanBundles:
    def test_deterministic(self):
        specs = _specs([5, 3, 8, 2, 6])
        assert plan_bundles(specs, 2) == plan_bundles(specs, 2)

    def test_covers_every_group_once(self):
        specs = _specs([5, 3, 8, 2, 6, 4, 7])
        bundles = plan_bundles(specs, 3)
        seen = [g.gid for bundle in bundles for g in bundle]
        assert sorted(seen) == [g.gid for g in specs]

    def test_largest_first_balance(self):
        # Greedy largest-first onto the lightest bundle keeps the
        # heaviest bundle within 2x of the lightest for these weights.
        specs = _specs([9, 8, 7, 2, 2, 2, 2])
        bundles = plan_bundles(specs, 3)
        weights = sorted(sum(len(g.members) for g in bundle) for bundle in bundles)
        assert weights[-1] <= 2 * weights[0]

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            plan_bundles(_specs([4, 4]), 3)

    def test_groupspec_round_trip(self):
        spec = _specs([3])[0]
        assert GroupSpec.from_dict(spec.to_dict()) == spec


class TestBundleDirectory:
    def test_lookup_inside_bundle(self):
        specs = _specs([4, 4])
        directory = BundleDirectory(3, specs[:1])
        group = directory.group_for_id(specs[0].lo + 1)
        assert group.gid == specs[0].gid

    def test_lookup_outside_bundle_raises(self):
        specs = _specs([4, 4])
        directory = BundleDirectory(3, specs[:1])
        with pytest.raises(ShardPartitionError):
            directory.group_for_id(specs[1].lo + 1)

    def test_invariants_are_bundle_local(self):
        specs = _specs([4, 4, 4])
        directory = BundleDirectory(3, specs[::2])  # gids 1 and 3
        directory.check_invariants()  # holes between bundles are fine


class TestScaleSpec:
    def test_epoch_count_rounds_up(self):
        assert ScaleSpec(nodes=8, num_shards=1, horizon=2.5, epoch=1.0).epoch_count == 3
        assert ScaleSpec(nodes=8, num_shards=1, horizon=2.0, epoch=1.0).epoch_count == 2

    def test_epoch_end_clamped_to_horizon(self):
        spec = ScaleSpec(nodes=8, num_shards=1, horizon=2.5, epoch=1.0)
        assert spec.epoch_end(2) == 2.5

    def test_round_trip(self):
        spec = ScaleSpec(nodes=24, num_shards=2, seed=11, deviants={3: "silent-relay"})
        assert ScaleSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            ScaleSpec(nodes=2, num_shards=1)
        with pytest.raises(ValueError):
            ScaleSpec(nodes=8, num_shards=0)


class TestScaleSpecCoalition:
    def test_round_trip_with_coalition_and_plan(self):
        spec = ScaleSpec(
            nodes=64,
            num_shards=4,
            seed=7,
            plan="storm",
            coalition={"mode": "shield", "members": [4, 20, 36, 52]},
            config={"relay_timeout": 4.0, "predecessor_timeout": 4.0, "rate_window": 4.0},
        )
        assert ScaleSpec.from_dict(spec.to_dict()) == spec

    def test_plain_manifest_unchanged_by_new_fields(self):
        # Pre-coalition manifests (and their fingerprint chains) must
        # stay byte-identical: the new keys serialize only when used.
        body = ScaleSpec(nodes=24, num_shards=2).to_dict()
        assert "coalition" not in body and "plan" not in body

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown coalition mode"):
            ScaleSpec(nodes=16, num_shards=1, coalition={"mode": "bribe", "members": [1]})

    def test_member_index_bounds_checked(self):
        with pytest.raises(ValueError, match="outside population"):
            ScaleSpec(nodes=16, num_shards=1, coalition={"mode": "shield", "members": [17]})

    def test_frame_needs_victims(self):
        with pytest.raises(ValueError, match="victim"):
            ScaleSpec(nodes=16, num_shards=1, coalition={"mode": "frame", "members": [1, 2]})

    def test_member_deviant_overlap_rejected(self):
        with pytest.raises(ValueError, match="both coalition members"):
            ScaleSpec(
                nodes=16,
                num_shards=1,
                deviants={3: "silent-relay"},
                coalition={"mode": "shield", "members": [3, 5]},
            )

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="tsunami"):
            ScaleSpec(nodes=16, num_shards=1, plan="tsunami")

    def test_behaviors_share_one_coordinator_across_replicas(self):
        # Two processes planning the same spec must build coalitions
        # that agree on every decision: same roster, same rotation.
        spec = ScaleSpec(
            nodes=16,
            num_shards=2,
            seed=3,
            coalition={"mode": "stagger", "members": [2, 9], "rotation_period": 1.5},
        )
        _config, materials, _directory = plan_population(spec)
        a = behaviors_for(spec, materials)
        b = behaviors_for(spec, materials)
        assert set(a) == {2, 9}
        roster_a = a[2].coordinator.member_ids
        roster_b = b[9].coordinator.member_ids
        assert roster_a == roster_b == tuple(
            sorted(materials[i - 1].node_id for i in (2, 9))
        )
        for t in (0.0, 1.5, 7.3, 29.9):
            assert a[2].coordinator.active_member(t) == b[9].coordinator.active_member(t)


class TestBuildFaultPlan:
    def test_none_is_clean(self):
        spec = ScaleSpec(nodes=16, num_shards=1)
        assert build_fault_plan(spec, spec.build_config()) is None

    def test_storm_rejected_against_default_tight_timers(self):
        # RacConfig.small keeps 1s-ish misbehaviour timers; a storm's
        # healing windows would read as freeriding. The contract is
        # enforced at plan time with an actionable message.
        spec = ScaleSpec(nodes=16, num_shards=1, plan="storm")
        with pytest.raises(ValueError, match="misbehaviour timers"):
            build_fault_plan(spec, spec.build_config())

    def test_storm_accepted_with_raised_timers(self):
        spec = ScaleSpec(
            nodes=16,
            num_shards=1,
            plan="storm",
            config={
                "relay_timeout": 4.0,
                "predecessor_timeout": 4.0,
                "rate_window": 4.0,
            },
        )
        plan = build_fault_plan(spec, spec.build_config())
        assert plan is not None and plan.events
        plan.validate(spec.nodes)


class TestFilterPlanEvents:
    def _plan(self):
        from repro.chaos.plan import FaultPlan

        plan = FaultPlan(seed=0, horizon=10.0)
        plan.crash_restart(2, at=1.0, downtime=1.0)
        plan.crash_restart(9, at=2.0, downtime=1.0)
        plan.partition((1, 2), (9, 10), at=3.0, duration=1.0)
        plan.partition((9,), (10,), at=4.0, duration=1.0)
        plan.loss(0.1, at=5.0, duration=1.0)  # global
        plan.loss(0.2, at=6.0, duration=1.0, node=9)
        return plan

    def test_local_node_events_survive_globals_kept(self):
        filtered = filter_plan_events(self._plan(), {1, 2})
        kinds = [(e.kind, e.node) for e in filtered.schedule()]
        assert ("crash", 2) in kinds
        assert ("crash", 9) not in kinds
        assert ("loss", None) in kinds  # global loss applies everywhere
        assert ("loss", 9) not in kinds

    def test_partition_intersected_needs_both_sides(self):
        filtered = filter_plan_events(self._plan(), {1, 2, 10})
        cuts = [e for e in filtered.schedule() if e.kind == "partition"]
        # First cut intersects to (1,2) vs (10,); second to nothing on
        # side a — a cut entirely between bundles is a no-op.
        assert len(cuts) == 1
        assert cuts[0].side_a == (1, 2) and cuts[0].side_b == (10,)

    def test_indices_stay_global(self):
        # The filtered plan compiles against the *full* node-id list,
        # so surviving events keep their global creation indices.
        filtered = filter_plan_events(self._plan(), {9, 10})
        crash = [e for e in filtered.schedule() if e.kind == "crash"]
        assert [e.node for e in crash] == [9]


class TestShuffleRng:
    def test_per_group_streams_are_stable_and_distinct(self):
        a1 = group_shuffle_rng(7, 1).random()
        a2 = group_shuffle_rng(7, 1).random()
        b = group_shuffle_rng(7, 2).random()
        assert a1 == a2
        assert a1 != b

    def test_monolithic_default_hook_uses_system_rng(self):
        system = RacSystem(RacConfig.small())
        assert system._shuffle_rng(1) is system.rng
        assert isinstance(system._shuffle_rng(99), random.Random)


class TestBarrierCanonicalisation:
    def test_sort_is_total_and_deterministic(self):
        records = [
            {"at": 1.0, "gid": 2, "node": 5, "kind": "eviction"},
            {"at": 0.5, "gid": 3, "node": 9, "kind": "eviction"},
            {"at": 1.0, "gid": 1, "node": 7, "kind": "eviction"},
            {"at": 1.0, "gid": 2, "node": 1, "kind": "eviction"},
        ]
        ordered = sort_barrier_records(records)
        key = [(r["at"], r["gid"], r["node"]) for r in ordered]
        assert key == sorted(key)
        assert sort_barrier_records(list(reversed(records))) == ordered

    def test_canonical_blob_is_key_order_independent(self):
        assert canonical_blob({"b": 1, "a": 2}) == canonical_blob({"a": 2, "b": 1})

    def test_chain_fingerprint_depends_on_history(self):
        one = chain_fingerprint(ZERO_FINGERPRINT, "alpha")
        two = chain_fingerprint(one, "beta")
        direct = chain_fingerprint(ZERO_FINGERPRINT, "beta")
        assert two != direct
        assert len(two) == 64


class TestShardSystem:
    def test_shards_partition_the_population(self):
        spec = ScaleSpec(nodes=24, num_shards=2, seed=3, horizon=1.0)
        systems = [build_shard_system(spec, k) for k in range(2)]
        ids = [sorted(s.nodes) for s in systems]
        assert not set(ids[0]) & set(ids[1])
        assert len(ids[0]) + len(ids[1]) == 24

    def test_notice_group_count_is_global(self):
        spec = ScaleSpec(nodes=24, num_shards=2, seed=3, horizon=1.0)
        system = build_shard_system(spec, 0)
        assert system._notice_group_count() >= len(system.directory.groups)

    def test_epoch_step_emits_chained_fingerprints(self):
        spec = ScaleSpec(nodes=24, num_shards=2, seed=3, horizon=1.0, epoch=0.5)
        system = build_shard_system(spec, 0)
        _, fp1 = epoch_step(system, spec, 0, [], ZERO_FINGERPRINT)
        _, fp2 = epoch_step(system, spec, 1, [], fp1)
        assert fp1 != ZERO_FINGERPRINT
        assert fp2 != fp1


class TestShardCacheHygiene:
    """Satellite: a worker picking up a shard must start cache-cold."""

    def test_run_shard_epoch_clears_stale_process_caches(self, tmp_path):
        from repro.orchestrator.sharded import run_sharded

        poison_key = (b"stale-shard-secret", 0xDEAD)
        _KEM_CACHE[poison_key] = b"poison"
        try:
            spec = ScaleSpec(nodes=8, num_shards=1, seed=5, horizon=0.5, epoch=0.5)
            run_sharded(spec, str(tmp_path / "run"), serial=True)
            # run_shard_epoch resets process caches at shard pickup even
            # on the inline path, so the pre-existing entry cannot have
            # survived into (or influenced) the shard's run.
            assert poison_key not in _KEM_CACHE
        finally:
            clear_process_caches()

    def test_worker_reset_hook_covers_kem_cache(self):
        from repro.orchestrator.workloads import reset_worker_caches

        _KEM_CACHE[(b"leftover", 1)] = b"x"
        reset_worker_caches()
        assert (b"leftover", 1) not in _KEM_CACHE
