"""The behaviour registry: stable names and expected opponent verdicts.

Two halves:

* shape — every deviation class the freeride package ships is in the
  registry under its own ``name`` attribute, the factories build, and
  lookups fail with the typed, menu-carrying error;
* verdicts — a minimal seeded campaign cell planted with each
  ``adversary.py`` opponent produces the registry's promised outcome
  (detectable opponents convicted, the lone false accuser bounded but
  *not* convicted, and never an honest eviction), both on a clean
  network and under 5% link loss.
"""

import inspect

import pytest

from repro.core.behavior import HonestBehavior
from repro.freeride import adversary, selective, strategies
from repro.freeride.registry import (
    BEHAVIORS,
    UnknownBehaviorError,
    behavior_names,
    make_behavior,
)


def _shipped_behavior_classes():
    classes = []
    for module in (strategies, adversary, selective):
        for _, obj in inspect.getmembers(module, inspect.isclass):
            if (
                issubclass(obj, HonestBehavior)
                and obj is not HonestBehavior
                and obj.__module__ == module.__name__
            ):
                classes.append(obj)
    return classes


class TestRegistryShape:
    def test_keys_equal_class_names(self):
        for name, spec in BEHAVIORS.items():
            assert name == spec.name

    def test_every_shipped_class_is_registered(self):
        shipped = {cls.name for cls in _shipped_behavior_classes()}
        assert shipped  # the scan itself must find the deviations
        missing = shipped - set(BEHAVIORS)
        assert not missing, f"unregistered deviations: {sorted(missing)}"

    def test_honest_is_registered(self):
        assert BEHAVIORS["honest"].kind == "honest"
        assert not BEHAVIORS["honest"].detectable

    def test_names_are_sorted(self):
        names = behavior_names()
        assert names == sorted(names)
        assert set(names) == set(BEHAVIORS)

    def test_factories_build(self):
        for name, spec in BEHAVIORS.items():
            built = make_behavior(name, seed=3, victim=0xBEEF)
            assert isinstance(built, HonestBehavior), name
            assert spec.kind in ("honest", "freerider", "opponent")

    def test_unknown_name_is_typed_and_lists_the_menu(self):
        with pytest.raises(UnknownBehaviorError) as err:
            make_behavior("sleepy-relay")
        message = str(err.value)
        assert "sleepy-relay" in message
        for known in ("forward-dropper", "false-accuser"):
            assert known in message
        assert isinstance(err.value, KeyError)  # still catches as a lookup

    def test_false_accuser_requires_victim(self):
        assert BEHAVIORS["false-accuser"].needs_victim
        with pytest.raises(ValueError, match="victim"):
            make_behavior("false-accuser")

    def test_adversary_opponents_carry_expected_promises(self):
        assert BEHAVIORS["path-drop-opponent"].detectable
        assert BEHAVIORS["replay-attacker"].detectable
        assert BEHAVIORS["flooder"].detectable
        assert not BEHAVIORS["false-accuser"].detectable
        for name in ("path-drop-opponent", "replay-attacker", "flooder", "false-accuser"):
            assert BEHAVIORS[name].kind == "opponent"


@pytest.mark.parametrize("loss", [0.0, 0.05], ids=["clean", "lossy5pct"])
@pytest.mark.parametrize(
    "opponent", ["path-drop-opponent", "replay-attacker", "flooder", "false-accuser"]
)
class TestOpponentVerdicts:
    """adversary.py opponents through one minimal seeded campaign cell."""

    def _cell(self, opponent, loss):
        from repro.campaign.scoring import run_campaign_cell

        return run_campaign_cell(
            {
                "strategy": opponent,
                "plan": "none",
                "loss": loss,
                "nodes": 10,
                "horizon": 12.0,
            },
            seed=0,
        )

    def test_verdict_matches_registry_promise(self, opponent, loss):
        outcome = self._cell(opponent, loss)
        spec = BEHAVIORS[opponent]
        assert outcome.detected == spec.detectable, (
            f"{opponent} at {loss:.0%} loss: expected "
            f"detected={spec.detectable}, got {outcome.detected}"
        )
        # Two-sided soundness regardless of the opponent: nobody honest
        # convicted, no required conviction missed.
        assert outcome.honest_evictions == 0
        assert outcome.missed_detections == 0
