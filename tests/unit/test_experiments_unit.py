"""Unit tests for the smaller experiment harnesses."""

import pytest

from repro.experiments.comparison import complexity_comparison, render_comparison
from repro.experiments.fig1 import empirical_dissent_v1_point, empirical_dissent_v2_point
from repro.experiments.runner import Table, format_rate, kbps, paper_sweep_sizes
from repro.experiments.ablation import recommend_parameters, sweep_relays


class TestRunnerHelpers:
    def test_kbps(self):
        assert kbps(8_000) == 8.0

    def test_format_rate_units(self):
        assert format_rate(200e6).endswith("Mb/s")
        assert format_rate(23_800).endswith("kb/s")
        assert format_rate(15.8).endswith("b/s")

    def test_sweep_is_log_spaced(self):
        sizes = paper_sweep_sizes(100, 10_000, per_decade=2)
        ratios = [b / a for a, b in zip(sizes, sizes[1:])]
        assert all(2.0 < r < 4.5 for r in ratios)

    def test_table_rejects_ragged_rows(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_table_renders_title_and_rule(self):
        table = Table(headers=["x"], title="T")
        table.add_row("v")
        lines = table.render().splitlines()
        assert lines[0] == "T"
        assert set(lines[2]) == {"-"}


class TestComparison:
    def test_row_fields(self):
        rows = complexity_comparison(sizes=(100, 1000))
        assert [r.nodes for r in rows] == [100, 1000]
        assert rows[0].onion == 5

    def test_rac_constant_above_group(self):
        rows = complexity_comparison(sizes=(2000, 50_000))
        assert rows[0].rac_grouped == rows[1].rac_grouped

    def test_render(self):
        text = render_comparison(complexity_comparison(sizes=(100,)))
        assert "RAC (G=1000)" in text


class TestEmpiricalBaselinePoints:
    def test_dissent_v1_point_positive_and_decreasing(self):
        fast = empirical_dissent_v1_point(6, message_length=500)
        slow = empirical_dissent_v1_point(12, message_length=500)
        assert slow < fast

    def test_dissent_v2_point_positive(self):
        assert empirical_dissent_v2_point(8, message_length=500, servers=2) > 0


class TestAblationUnits:
    def test_relay_sweep_is_sorted_by_value(self):
        points = sweep_relays(values=(2, 5))
        assert [p.value for p in points] == [2, 5]

    def test_recommend_rejects_majority_opponents(self):
        with pytest.raises(ValueError):
            recommend_parameters(f=0.6)

    def test_recommend_rejects_impossible_targets(self):
        with pytest.raises(ValueError):
            recommend_parameters(f=0.45, max_sender_break=1e-300, max_relays=3,
                                 min_anonymity_set=10)
