"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector
from repro.simnet.network import StarNetwork


def make(seed=0, loss_rate=0.0):
    sim = Simulator()
    faults = FaultInjector(sim, seed=seed, loss_rate=loss_rate)
    net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
    return sim, faults, net


class TestLossConfig:
    def test_default_rate_applies_to_every_link(self):
        _sim, faults, _net = make(loss_rate=0.25)
        assert faults.loss_rate(7, "up") == 0.25
        assert faults.loss_rate(99, "down") == 0.25

    def test_per_link_override(self):
        _sim, faults, _net = make(loss_rate=0.1)
        faults.set_loss_rate(0.9, node_id=3, direction="down")
        assert faults.loss_rate(3, "down") == 0.9
        assert faults.loss_rate(3, "up") == 0.1
        assert faults.loss_rate(4, "down") == 0.1

    def test_invalid_rate_rejected(self):
        _sim, faults, _net = make()
        with pytest.raises(ValueError):
            faults.set_loss_rate(1.0)
        with pytest.raises(ValueError):
            faults.set_loss_rate(-0.1)

    def test_invalid_direction_rejected(self):
        _sim, faults, _net = make()
        with pytest.raises(ValueError):
            faults.set_loss_rate(0.5, node_id=1, direction="sideways")

    def test_zero_loss_never_draws_rng(self):
        # Lossless runs must stay byte-identical to the pre-fault era:
        # the verdict path may not consume RNG state.
        sim, faults, net = make()
        state = faults.rng.getstate()
        net.attach(1, lambda p: None)
        net.attach(2, lambda p: None)
        for _ in range(10):
            net.send(1, 2, "x", 10)
        sim.run()
        assert faults.rng.getstate() == state
        assert net.packets_dropped == 0


class TestDeterminism:
    def run_once(self, seed):
        sim, _faults, net = make(seed=seed, loss_rate=0.3)
        trace = []
        net.attach(1, lambda p: trace.append((sim.now, p.payload)))
        net.attach(2, lambda p: None)
        for i in range(40):
            net.send(2, 1, i, 25)
        sim.run()
        return trace, net.packets_dropped

    def test_same_seed_same_drops(self):
        assert self.run_once(42) == self.run_once(42)

    def test_different_seed_different_drops(self):
        assert self.run_once(1) != self.run_once(2)


class TestOutages:
    def test_uplink_outage_blackholes_window(self):
        sim, faults, net = make()
        got = []
        net.attach(1, lambda p: got.append(p.payload))
        net.attach(2, lambda p: None)
        faults.schedule_outage(2, at=0.0, duration=1.0, direction="up")
        net.send(2, 1, "during", 10)
        sim.run(until=2.0)
        net.send(2, 1, "after", 10)
        sim.run()
        assert got == ["after"]
        assert net.drops_by_reason["outage"] == 1

    def test_downlink_outage_direction_is_respected(self):
        sim, faults, net = make()
        got = []
        net.attach(1, lambda p: got.append(p.payload))
        net.attach(2, lambda p: got.append(p.payload))
        faults.schedule_outage(1, at=0.0, duration=1.0, direction="down")
        net.send(2, 1, "to-1-dropped", 10)  # 1's downlink is out
        net.send(1, 2, "to-2-fine", 10)  # 1's uplink is fine
        sim.run()
        assert got == ["to-2-fine"]

    def test_invalid_duration_rejected(self):
        _sim, faults, _net = make()
        with pytest.raises(ValueError):
            faults.schedule_outage(1, at=0.0, duration=0.0)


class TestPartitions:
    def test_cross_partition_traffic_dropped_both_ways(self):
        sim, faults, net = make()
        got = []
        for n in (1, 2, 3, 4):
            net.attach(n, lambda p: got.append((p.src, p.dst)))
        faults.schedule_partition({1, 2}, {3, 4}, at=0.0, duration=5.0)
        net.send(1, 3, "x", 10)  # cross: dropped
        net.send(4, 2, "x", 10)  # cross: dropped
        net.send(1, 2, "x", 10)  # same side: delivered
        net.send(3, 4, "x", 10)  # same side: delivered
        sim.run()
        assert sorted(got) == [(1, 2), (3, 4)]
        assert net.drops_by_reason["partition"] == 2

    def test_partition_heals_after_window(self):
        sim, faults, net = make()
        got = []
        net.attach(1, lambda p: got.append(p.payload))
        net.attach(2, lambda p: None)
        faults.schedule_partition({1}, {2}, at=0.0, duration=0.5)
        sim.run(until=1.0)
        net.send(2, 1, "healed", 10)
        sim.run()
        assert got == ["healed"]

    def test_overlapping_sides_rejected(self):
        _sim, faults, _net = make()
        with pytest.raises(ValueError):
            faults.schedule_partition({1, 2}, {2, 3}, at=0.0, duration=1.0)


class TestDegradation:
    def test_factor_restored_after_window(self):
        sim, faults, net = make()
        net.attach(1, lambda p: None)
        faults.schedule_degradation(1, at=1.0, duration=2.0, factor=0.25)
        sim.run(until=2.0)
        assert net.uplinks[1].rate_factor == pytest.approx(0.25)
        assert net.downlinks[1].rate_factor == pytest.approx(0.25)
        sim.run(until=4.0)
        assert net.uplinks[1].rate_factor == pytest.approx(1.0)
        assert net.downlinks[1].rate_factor == pytest.approx(1.0)

    def test_invalid_factor_rejected(self):
        _sim, faults, _net = make()
        with pytest.raises(ValueError):
            faults.schedule_degradation(1, at=0.0, duration=1.0, factor=0.0)
        with pytest.raises(ValueError):
            faults.schedule_degradation(1, at=0.0, duration=1.0, factor=1.5)

    def test_past_window_rejected(self):
        sim, faults, _net = make()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            faults.schedule_degradation(1, at=1.0, duration=1.0, factor=0.5)
