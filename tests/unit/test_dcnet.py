"""Unit tests for the DC-net substrate."""

import pytest

from repro.baselines.dcnet import DCNet, DCNetMember, pad_for


class TestPads:
    def test_deterministic(self):
        assert pad_for(b"s", 3, 64) == pad_for(b"s", 3, 64)

    def test_round_sensitive(self):
        assert pad_for(b"s", 3, 64) != pad_for(b"s", 4, 64)

    def test_exact_length(self):
        assert len(pad_for(b"s", 0, 100)) == 100

    def test_pairwise_secrets_symmetric(self):
        a = DCNetMember(0, b"seed", 3)
        b = DCNetMember(1, b"seed", 3)
        assert a._secrets[1] == b._secrets[0]


class TestRounds:
    def test_message_revealed(self):
        net = DCNet(5, b"seed", slot_length=32)
        outcome = net.run_round(sender=3, message=b"hello world")
        assert outcome.revealed == b"hello world"
        assert not outcome.collision

    def test_empty_round_reveals_nothing(self):
        net = DCNet(4, b"seed", slot_length=32)
        outcome = net.run_round()
        assert outcome.revealed == b""

    def test_anonymity_transmissions_look_alike(self):
        # Without the combination step, no single member's vector
        # reveals whether it was the sender: all are full-length noise.
        net = DCNet(4, b"seed", slot_length=32)
        sender_vec = net.members[1].transmission(0, 32, b"m".ljust(32, b"\x00"))
        silent_vec = net.members[2].transmission(0, 32, None)
        assert len(sender_vec) == len(silent_vec) == 32
        assert sender_vec != silent_vec  # but both look random

    def test_collision_garbles(self):
        net = DCNet(4, b"seed", slot_length=16)
        outcome = net.run_round_multi({0: b"aaaa", 1: b"bbbb"})
        assert outcome.collision
        assert outcome.revealed not in (b"aaaa", b"bbbb")

    def test_round_numbers_advance(self):
        net = DCNet(3, b"seed")
        first = net.run_round()
        second = net.run_round()
        assert (first.round_number, second.round_number) == (0, 1)

    def test_all_to_all_cost(self):
        net = DCNet(6, b"seed", slot_length=64)
        outcome = net.run_round(sender=0, message=b"x")
        assert outcome.messages_on_wire == 6 * 5
        assert outcome.bytes_on_wire == 6 * 5 * 64

    def test_oversized_message_rejected(self):
        net = DCNet(3, b"seed", slot_length=4)
        with pytest.raises(ValueError):
            net.run_round(sender=0, message=b"toolong")

    def test_sender_without_message_rejected(self):
        net = DCNet(3, b"seed")
        with pytest.raises(ValueError):
            net.run_round(sender=1)

    def test_too_small_net_rejected(self):
        with pytest.raises(ValueError):
            DCNet(1, b"seed")


class TestReservation:
    def test_order_is_deterministic(self):
        net = DCNet(5, b"seed")
        assert net.reserve_slots([4, 1, 3]) == [1, 3, 4]

    def test_unknown_member_rejected(self):
        net = DCNet(3, b"seed")
        with pytest.raises(ValueError):
            net.reserve_slots([7])

    def test_reservation_charged(self):
        net = DCNet(4, b"seed")
        before = net.total_messages
        net.reserve_slots([0, 1])
        assert net.total_messages > before
