"""Unit tests for RacConfig validation and derived thresholds."""

import pytest

from repro.core.config import RacConfig


def small(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=100,
        message_size=2048,
        puzzle_bits=2,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestValidation:
    def test_paper_defaults(self):
        config = RacConfig()
        assert config.num_relays == 5
        assert config.num_rings == 7
        assert config.message_size == 10_000

    def test_zero_relays_rejected(self):
        with pytest.raises(ValueError):
            small(num_relays=0)

    def test_zero_rings_rejected(self):
        with pytest.raises(ValueError):
            small(num_rings=0)

    def test_tiny_groups_rejected(self):
        with pytest.raises(ValueError):
            small(group_min=1)

    def test_group_max_must_allow_splitting(self):
        with pytest.raises(ValueError):
            small(group_min=10, group_max=19)

    def test_tiny_messages_rejected(self):
        with pytest.raises(ValueError):
            small(message_size=100)

    def test_majority_opponents_rejected(self):
        with pytest.raises(ValueError):
            small(assumed_opponent_fraction=0.5)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            small(key_backend="rot13")


class TestThresholds:
    def test_predecessor_threshold_is_t_plus_one(self):
        config = small(num_rings=7, assumed_opponent_fraction=0.1)
        # t = ceil(0.1 * 7) = 1, threshold = 2
        assert config.predecessor_accusation_threshold(100) == 2

    def test_predecessor_threshold_capped_by_rings(self):
        config = small(num_rings=3, assumed_opponent_fraction=0.4)
        # t = min(R-1, ceil(0.4*3)=2) = 2, threshold 3
        assert config.predecessor_accusation_threshold(100) == 3

    def test_relay_threshold_is_fg_plus_one(self):
        config = small(assumed_opponent_fraction=0.1)
        assert config.relay_accusation_threshold(50) == 6
        assert config.relay_accusation_threshold(14) == 2

    def test_zero_opponents_means_single_accuser(self):
        config = small(assumed_opponent_fraction=0.0)
        assert config.relay_accusation_threshold(1000) == 1
        assert config.predecessor_accusation_threshold(1000) == 1
