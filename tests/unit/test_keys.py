"""Unit tests for repro.crypto.keys (two-backend sealed boxes)."""

import pytest

from repro.crypto.keys import AuthenticationError, KeyPair, PublicKey, seal, sealed_overhead


BACKENDS = ("sim", "dh")


@pytest.mark.parametrize("backend", BACKENDS)
class TestSealUnseal:
    def test_roundtrip(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        blob = seal(keypair.public, b"message", seed=5)
        assert keypair.unseal(blob) == b"message"

    def test_wrong_key_raises(self, backend):
        alice = KeyPair.generate(backend, seed=1)
        bob = KeyPair.generate(backend, seed=2)
        blob = seal(alice.public, b"message", seed=5)
        with pytest.raises(AuthenticationError):
            bob.unseal(blob)

    def test_tampered_blob_raises(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        blob = bytearray(seal(keypair.public, b"message", seed=5))
        blob[-1] ^= 0xFF
        with pytest.raises(AuthenticationError):
            keypair.unseal(bytes(blob))

    def test_seeded_seal_is_deterministic(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        assert seal(keypair.public, b"m", seed=9) == seal(keypair.public, b"m", seed=9)

    def test_unseeded_seal_randomizes(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        assert seal(keypair.public, b"m") != seal(keypair.public, b"m")

    def test_overhead_matches_reality(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        plaintext = b"x" * 100
        blob = seal(keypair.public, plaintext, seed=3)
        assert len(blob) == len(plaintext) + sealed_overhead(keypair.public)

    def test_empty_blob_raises(self, backend):
        keypair = KeyPair.generate(backend, seed=1)
        with pytest.raises(AuthenticationError):
            keypair.unseal(b"")

    def test_large_seed_accepted(self, backend):
        # Regression: 62-bit rng seeds scaled by 4 overflowed 8 bytes.
        keypair = KeyPair.generate(backend, seed=(1 << 62) * 4 + 1)
        blob = seal(keypair.public, b"m", seed=(1 << 62) * 4 + 2)
        assert keypair.unseal(blob) == b"m"


class TestBackendSeparation:
    def test_sim_box_rejected_by_dh_key(self):
        sim_key = KeyPair.generate("sim", seed=1)
        dh_key = KeyPair.generate("dh", seed=1)
        blob = seal(sim_key.public, b"m", seed=2)
        with pytest.raises(AuthenticationError):
            dh_key.unseal(blob)

    def test_garbage_format_rejected(self):
        keypair = KeyPair.generate("sim", seed=1)
        with pytest.raises(AuthenticationError):
            keypair.unseal(b"Zgarbage-bytes-here")


class TestPublicKey:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PublicKey("rsa", 1)

    def test_dh_requires_material(self):
        with pytest.raises(ValueError):
            PublicKey("dh", 1)

    def test_hashable(self):
        a = KeyPair.generate("sim", seed=1).public
        b = KeyPair.generate("sim", seed=2).public
        assert len({a, b, a}) == 2

    def test_keypair_ids_deterministic_per_seed(self):
        assert KeyPair.generate("sim", seed=5).public.key_id == KeyPair.generate("sim", seed=5).public.key_id
