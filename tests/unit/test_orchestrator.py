"""Unit tests for the sweep orchestrator.

Covers the ISSUE's required recovery paths: worker-crash retry with
bounded backoff, resume from a mid-run checkpoint, and the result
store's versioned schema round-trip — plus grid identity, manifest
round-trips and the aggregation helpers the figures consume.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.orchestrator import (
    RESULT_SCHEMA_VERSION,
    ResultRecord,
    ResultStore,
    StoreSchemaError,
    SweepCell,
    SweepGrid,
    SweepOrchestrator,
    WorkerContext,
    run_cell_inline,
    run_grid_inline,
)
from repro.orchestrator.pool import STORE_NAME, load_manifest, write_manifest
from repro.orchestrator.workloads import protocol_run

_FAST = {"nodes": 4, "duration": 2.0, "messages": 1}


# ---------------------------------------------------------------------------
# grid identity
# ---------------------------------------------------------------------------
class TestGrid:
    def test_cell_id_is_insensitive_to_param_order(self):
        a = SweepCell.make("protocol", {"nodes": 4, "duration": 1.0}, 3)
        b = SweepCell.make("protocol", {"duration": 1.0, "nodes": 4}, 3)
        assert a.cell_id == b.cell_id
        assert a.config_hash == b.config_hash

    def test_cell_id_changes_with_any_identity_component(self):
        base = SweepCell.make("protocol", {"nodes": 4}, 0)
        assert base.cell_id != SweepCell.make("protocol", {"nodes": 5}, 0).cell_id
        assert base.cell_id != SweepCell.make("protocol", {"nodes": 4}, 1).cell_id
        assert base.cell_id != SweepCell.make("fig1_point", {"nodes": 4}, 0).cell_id

    def test_grid_enumeration_is_deterministic(self):
        grid = SweepGrid("protocol", {"b": [1, 2], "a": [3]}, seeds=(0, 1))
        ids = [c.cell_id for c in grid.cells()]
        again = [c.cell_id for c in SweepGrid("protocol", {"a": [3], "b": [1, 2]}, seeds=(0, 1)).cells()]
        assert ids == again
        assert len(ids) == len(set(ids)) == len(grid) == 4

    def test_manifest_spec_round_trip(self, tmp_path):
        grid = SweepGrid("protocol", {"nodes": [4, 6]}, seeds=(0, 1), base_params={"duration": 1.0})
        write_manifest(str(tmp_path), grid, {"workers": 3})
        restored, options = load_manifest(str(tmp_path))
        assert [c.cell_id for c in restored.cells()] == [c.cell_id for c in grid.cells()]
        assert options == {"workers": 3}

    def test_base_and_axis_params_cannot_overlap(self):
        with pytest.raises(ValueError):
            SweepGrid("protocol", {"nodes": [4]}, base_params={"nodes": 6})

    def test_non_json_param_values_are_rejected(self):
        with pytest.raises(TypeError):
            SweepCell.make("protocol", {"bad": object()}, 0)


# ---------------------------------------------------------------------------
# result store schema
# ---------------------------------------------------------------------------
def _record(**overrides) -> ResultRecord:
    base = dict(
        cell_id="abc123",
        experiment="protocol",
        config_hash="deadbeef",
        params={"nodes": 4},
        seed=0,
        metrics={"throughput_bps": 176.0},
    )
    base.update(overrides)
    return ResultRecord(**base)


class TestStore:
    def test_record_json_round_trip(self):
        record = _record(attempts=2, wall_time_s=1.25, sim_time_s=4.0)
        clone = ResultRecord.from_json(record.to_json())
        assert clone == record
        assert clone.schema == RESULT_SCHEMA_VERSION

    def test_unknown_schema_version_fails_loudly(self):
        body = json.loads(_record().to_json())
        body["schema"] = RESULT_SCHEMA_VERSION + 1
        with pytest.raises(StoreSchemaError):
            ResultRecord.from_json(json.dumps(body))

    def test_garbage_line_fails_loudly(self):
        with pytest.raises(StoreSchemaError):
            ResultRecord.from_json("not json at all")

    def test_invalid_status_rejected(self):
        with pytest.raises(ValueError):
            _record(status="maybe")

    def test_jsonl_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "results.jsonl")
        store = ResultStore(path)
        store.append(_record())
        store.append(_record(cell_id="def456", status="failed", error="boom"))
        fresh = ResultStore(path)
        assert len(fresh) == 2
        assert fresh.completed_ids() == {"abc123"}
        assert fresh.failed_ids() == {"def456"}

    def test_last_record_wins(self):
        store = ResultStore()
        store.append(_record(status="failed", error="crash"))
        store.append(_record(attempts=2))
        assert store.completed_ids() == {"abc123"}
        assert store.latest()["abc123"].attempts == 2

    def test_series_means_over_seeds(self):
        store = ResultStore()
        for seed, value in ((0, 10.0), (1, 30.0)):
            store.append(
                _record(cell_id=f"c{seed}", seed=seed, metrics={"m": value})
            )
        xs, ys = store.series("nodes", "m")
        assert xs == [4]
        assert ys == [20.0]

    def test_aggregate_rows(self):
        store = ResultStore()
        store.append(_record(cell_id="c0", params={"nodes": 4}, metrics={"m": 1.0}))
        store.append(_record(cell_id="c1", params={"nodes": 8}, metrics={"m": 3.0}))
        rows = store.aggregate("m", by="nodes")
        assert [(r["nodes"], r["mean"]) for r in rows] == [(4, 1.0), (8, 3.0)]

    def test_aggregate_counts_records_missing_the_metric(self):
        """A heterogeneous store (e.g. campaign cells next to protocol
        cells) skips and *counts* metric-less records, never KeyErrors."""
        store = ResultStore()
        store.append(_record(cell_id="c0", metrics={"m": 1.0}))
        store.append(_record(cell_id="c1", metrics={"other": 9.0}))
        store.append(_record(cell_id="c2", metrics={}, status="failed", error="x"))
        rows, skipped = store.aggregate("m", by="nodes", with_skipped=True)
        assert [(r["nodes"], r["n"]) for r in rows] == [(4, 1)]
        assert skipped == 1  # the failed record is 'failed', not 'skipped'
        # The default return shape is unchanged for existing callers.
        assert store.aggregate("m", by="nodes") == rows

    def test_series_counts_records_missing_the_metric(self):
        store = ResultStore()
        store.append(_record(cell_id="c0", metrics={"m": 2.0}))
        store.append(_record(cell_id="c1", metrics={"other": 1.0}))
        xs, ys, skipped = store.series("nodes", "m", with_skipped=True)
        assert (xs, ys) == ([4], [2.0])
        assert skipped == 1
        assert store.series("nodes", "m") == (xs, ys)


# ---------------------------------------------------------------------------
# inline execution + checkpoint resume (no processes)
# ---------------------------------------------------------------------------
class TestInline:
    def test_run_cell_inline_protocol(self):
        record = run_cell_inline(SweepCell.make("protocol", _FAST, 0))
        assert record.status == "ok"
        assert record.metrics["deliveries"] > 0
        assert record.sim_time_s == pytest.approx(2.0)

    def test_run_grid_inline_skips_completed_cells(self):
        grid = SweepGrid("fig1_point", {"nodes": [100, 1000]})
        store = run_grid_inline(grid)
        assert len(store) == 2
        run_grid_inline(grid, store)  # resume semantics: nothing re-runs
        assert len(store) == 2

    def test_resume_from_checkpoint_matches_uninterrupted(self, tmp_path):
        """A run resumed from its mid-run snapshot reproduces the full
        run's metrics exactly (the crash-recovery correctness core)."""
        params = {"nodes": 4, "duration": 2.0, "messages": 1}
        uninterrupted = protocol_run(dict(params), 7, WorkerContext())

        path = str(tmp_path / "cell.snap")
        first = WorkerContext(checkpoint_path=path, checkpoint_interval=1.0)
        full = protocol_run(dict(params), 7, first)
        assert full == uninterrupted
        # The t=1.0 checkpoint is still on disk (the pool clears it only
        # after the record is safely outboxed); a fresh attempt must
        # resume from it rather than restart.
        assert first.checkpoints_written == 1
        assert os.path.exists(path)
        second = WorkerContext(checkpoint_path=path, checkpoint_interval=1.0, attempt=1)
        resumed = protocol_run(dict(params), 7, second)
        assert resumed == uninterrupted

    def test_unknown_workload_fails_with_typed_listing_error(self):
        from repro.orchestrator import UnknownWorkloadError

        with pytest.raises(UnknownWorkloadError) as err:
            run_cell_inline(SweepCell.make("no_such_experiment", {}, 0))
        message = str(err.value)
        assert "no_such_experiment" in message
        for registered in ("protocol", "campaign_point", "chaos_point"):
            assert registered in message
        assert isinstance(err.value, KeyError)  # old except-clauses still catch


# ---------------------------------------------------------------------------
# the worker pool (real processes)
# ---------------------------------------------------------------------------
class TestPool:
    def test_injected_crash_is_retried_to_success(self, tmp_path):
        grid = SweepGrid("protocol", {"nodes": [4]}, seeds=(0,), base_params={"duration": 1.0, "messages": 1})
        cell = grid.cells()[0]
        store = ResultStore(str(tmp_path / STORE_NAME))
        orchestrator = SweepOrchestrator(
            grid,
            store,
            str(tmp_path),
            workers=1,
            checkpoint_interval=0.5,
            backoff_base=0.05,
            inject_crash_cells={cell.cell_id},
        )
        status = orchestrator.run()
        assert status.done and status.failed == 0
        record = store.latest()[cell.cell_id]
        assert record.status == "ok"
        assert record.attempts == 2
        # Crash recovery must not change the numbers.
        assert record.metrics == run_cell_inline(cell).metrics
        # Checkpoint and outbox are cleaned up after collection.
        assert os.listdir(str(tmp_path / "checkpoints")) == []
        assert os.listdir(str(tmp_path / "outbox")) == []

    def test_exhausted_retries_record_a_failure(self, tmp_path):
        grid = SweepGrid("protocol", {"nodes": [4]}, seeds=(0,), base_params={"duration": 1.0, "messages": 1})
        cell = grid.cells()[0]
        store = ResultStore(str(tmp_path / STORE_NAME))
        orchestrator = SweepOrchestrator(
            grid,
            store,
            str(tmp_path),
            workers=1,
            max_retries=0,  # the injected first-attempt crash is terminal
            inject_crash_cells={cell.cell_id},
        )
        status = orchestrator.run()
        assert status.failed == 1
        record = store.latest()[cell.cell_id]
        assert record.status == "failed"
        assert record.attempts == 1
        assert "crash" in record.error

    def test_hung_worker_is_killed_and_recorded(self, tmp_path):
        # A long simulation against a tiny wall-clock timeout: the pool
        # must terminate the worker and record the failure.
        grid = SweepGrid(
            "protocol", {"nodes": [8]}, seeds=(0,), base_params={"duration": 300.0, "messages": 4}
        )
        store = ResultStore(str(tmp_path / STORE_NAME))
        orchestrator = SweepOrchestrator(
            grid, store, str(tmp_path), workers=1, max_retries=0, worker_timeout=0.4
        )
        status = orchestrator.run()
        assert status.failed == 1
        record = store.latest()[grid.cells()[0].cell_id]
        assert record.status == "failed"
        assert "hung" in record.error

    def test_resume_skips_completed_cells(self, tmp_path):
        grid = SweepGrid("protocol", {"nodes": [4, 6]}, seeds=(0,), base_params={"duration": 1.0, "messages": 1})
        store = ResultStore(str(tmp_path / STORE_NAME))
        first, second = grid.cells()
        # Simulate an interrupted campaign: only the first cell finished.
        store.append(run_cell_inline(first))
        orchestrator = SweepOrchestrator(grid, store, str(tmp_path), workers=1)
        status = orchestrator.run()
        assert status.done and status.completed == 2
        # The completed cell was not re-run (still exactly one record).
        records = [r for r in store.records() if r.cell_id == first.cell_id]
        assert len(records) == 1
