"""Unit tests for the group directory (split/dissolve lifecycle)."""

import random

import pytest

from repro.groups.manager import GroupDirectory, GroupEvent


def spread_ids(count, seed=0):
    """Well-spread pseudo-random 128-bit ids (like puzzle outputs)."""
    rng = random.Random(seed)
    ids = set()
    while len(ids) < count:
        ids.add(rng.getrandbits(128))
    return sorted(ids)


class TestAssignment:
    def test_single_group_initially(self):
        directory = GroupDirectory(num_rings=3)
        assert len(directory.groups) == 1

    def test_nodes_land_in_covering_group(self):
        directory = GroupDirectory(num_rings=3)
        for node_id in spread_ids(10):
            directory.add_node(node_id)
            assert directory.group_of_node(node_id).covers(node_id)
        directory.check_invariants()

    def test_double_add_rejected(self):
        directory = GroupDirectory(num_rings=3)
        directory.add_node(42)
        with pytest.raises(ValueError):
            directory.add_node(42)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            GroupDirectory(num_rings=3).remove_node(42)

    def test_join_event_emitted(self):
        directory = GroupDirectory(num_rings=3)
        events = directory.add_node(42)
        assert events[0] == GroupEvent("join", directory.group_of_node(42).gid, node_id=42)


class TestSplit:
    def test_split_when_exceeding_smax(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=8)
        for node_id in spread_ids(9):
            events = directory.add_node(node_id)
        kinds = [e.kind for e in events]
        assert "split" in kinds
        assert len(directory.groups) == 2
        directory.check_invariants()

    def test_split_halves_are_balanced(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=8)
        for node_id in spread_ids(9, seed=1):
            directory.add_node(node_id)
        sizes = sorted(directory.sizes().values())
        assert sizes == [4, 5]

    def test_lower_ids_stay_higher_ids_move(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=8)
        ids = spread_ids(9, seed=2)
        for node_id in ids:
            directory.add_node(node_id)
        groups = sorted(directory.groups.values(), key=lambda g: g.lo)
        assert max(groups[0].members) < min(groups[1].members)

    def test_repeated_splits(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=6)
        for node_id in spread_ids(40, seed=3):
            directory.add_node(node_id)
        directory.check_invariants()
        assert len(directory.groups) >= 4
        assert all(size <= 6 for size in directory.sizes().values())

    def test_smax_below_twice_smin_rejected(self):
        with pytest.raises(ValueError):
            GroupDirectory(num_rings=3, smin=10, smax=19)


class TestDissolve:
    def build_two_groups(self):
        directory = GroupDirectory(num_rings=3, smin=3, smax=8)
        ids = spread_ids(9, seed=4)
        for node_id in ids:
            directory.add_node(node_id)
        assert len(directory.groups) == 2
        return directory

    def test_dissolve_below_smin(self):
        directory = self.build_two_groups()
        small_gid, victims = None, []
        sizes = directory.sizes()
        small_gid = min(sizes, key=sizes.get)
        victims = sorted(directory.groups[small_gid].members)
        # Shrink the small group below smin.
        events = []
        for node_id in victims[: len(victims) - 2]:
            events = directory.remove_node(node_id)
        assert any(e.kind == "dissolve" for e in events)
        assert small_gid not in directory.groups
        directory.check_invariants()

    def test_last_group_never_dissolves(self):
        directory = GroupDirectory(num_rings=3, smin=5, smax=100)
        directory.add_node(1)
        directory.add_node(2)
        events = directory.remove_node(1)
        assert [e.kind for e in events] == ["leave"]
        assert len(directory.groups) == 1

    def test_members_rehomed_after_dissolve(self):
        directory = self.build_two_groups()
        sizes = directory.sizes()
        small_gid = min(sizes, key=sizes.get)
        survivors = sorted(directory.groups[small_gid].members)
        for node_id in survivors[:-2]:
            directory.remove_node(node_id)
        for node_id in survivors[-2:]:
            group = directory.group_of_node(node_id)
            assert node_id in group.members
        directory.check_invariants()


class TestInvariantChecker:
    def test_random_churn_preserves_invariants(self):
        rng = random.Random(9)
        directory = GroupDirectory(num_rings=2, smin=2, smax=10)
        alive = []
        for step in range(300):
            if alive and rng.random() < 0.4:
                node_id = alive.pop(rng.randrange(len(alive)))
                directory.remove_node(node_id)
            else:
                node_id = rng.getrandbits(128)
                if node_id not in alive:
                    directory.add_node(node_id)
                    alive.append(node_id)
            directory.check_invariants()
        assert set(directory.node_ids) == set(alive)
