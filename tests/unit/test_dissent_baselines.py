"""Unit tests for the Dissent v1 and v2 baseline implementations."""

import random

import pytest

from repro.baselines.dissent_v1 import DissentV1Group
from repro.baselines.dissent_v2 import DissentV2System
from repro.crypto.shuffle import DishonestParticipant


class TestDissentV1:
    def test_round_delivers_all_messages(self):
        group = DissentV1Group(5, message_length=64, seed=1)
        messages = [b"msg-%d" % i for i in range(5)]
        outcome = group.run_round(messages)
        assert outcome.success
        assert sorted(outcome.messages) == sorted(messages)

    def test_output_order_hides_senders(self):
        # At least one of a few seeds must produce a non-identity order.
        messages = [b"m%d" % i for i in range(6)]
        permuted = False
        for seed in range(4):
            group = DissentV1Group(6, message_length=16, seed=seed)
            outcome = group.run_round(messages)
            if outcome.messages != [m for m in messages]:
                permuted = True
        assert permuted

    def test_disruptor_blamed_and_round_fails(self):
        group = DissentV1Group(4, message_length=32, seed=2)
        cheater = DishonestParticipant(1, "corrupt", rng=random.Random(5))
        outcome = group.run_round([b"a", b"b", b"c", b"d"], dishonest={1: cheater})
        assert not outcome.success
        assert outcome.blamed == [1]

    def test_wire_cost_scales_quadratically_per_message(self):
        small = DissentV1Group(4, message_length=32, seed=3)
        large = DissentV1Group(8, message_length=32, seed=3)
        cost_small = small.run_round([b"x"] * 4).messages_on_wire / 4
        cost_large = large.run_round([b"x"] * 8).messages_on_wire / 8
        # Per delivered message the cost grows ~quadratically: ratio ~4.
        assert cost_large / cost_small == pytest.approx(4.0, rel=0.35)

    def test_message_count_validation(self):
        group = DissentV1Group(3, message_length=16)
        with pytest.raises(ValueError):
            group.run_round([b"only-one"])

    def test_oversized_message_rejected(self):
        group = DissentV1Group(2, message_length=4)
        with pytest.raises(ValueError):
            group.run_round([b"toolong", b"ok"])

    def test_copies_per_round_signature(self):
        assert DissentV1Group(10, message_length=8).copies_per_round() == 100


class TestDissentV2:
    def test_round_delivers_all_messages(self):
        system = DissentV2System(9, server_count=3, message_length=32, seed=4)
        messages = [b"c%d" % i for i in range(9)]
        outcome = system.run_round(messages)
        assert outcome.success
        assert sorted(outcome.messages) == sorted(messages)

    def test_clients_spread_evenly(self):
        system = DissentV2System(10, server_count=3, message_length=16)
        sizes = {}
        for client, server in system.assignment.items():
            sizes[server] = sizes.get(server, 0) + 1
        assert max(sizes.values()) - min(sizes.values()) <= 1

    def test_optimal_server_count_default(self):
        system = DissentV2System(100, message_length=16)
        assert system.server_count == 10

    def test_bottleneck_grows_with_clients(self):
        small = DissentV2System(8, server_count=2, message_length=16, seed=5)
        large = DissentV2System(32, server_count=2, message_length=16, seed=5)
        cost_small = small.run_round([b"x"] * 8).bottleneck_server_copies
        cost_large = large.run_round([b"x"] * 32).bottleneck_server_copies
        assert cost_large > cost_small * 4

    def test_analytic_bottleneck_form(self):
        system = DissentV2System(100, server_count=10, message_length=16)
        assert system.copies_per_message_at_bottleneck() == pytest.approx(10 + 10)

    def test_single_server_rejected(self):
        with pytest.raises(ValueError):
            DissentV2System(10, server_count=1)

    def test_message_count_validation(self):
        system = DissentV2System(4, server_count=2, message_length=16)
        with pytest.raises(ValueError):
            system.run_round([b"x"] * 3)
