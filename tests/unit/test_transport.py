"""Unit tests for the ARQ transport (reliable FIFO over lossy links)."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector
from repro.simnet.network import StarNetwork
from repro.simnet.stats import StatsRegistry
from repro.simnet.transport import Ack, ReliableTransport, Segment


def make(loss_rate=0.0, seed=0, **transport_kwargs):
    sim = Simulator()
    faults = FaultInjector(sim, seed=seed, loss_rate=loss_rate)
    net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
    transport = ReliableTransport(net, **transport_kwargs)
    return sim, net, transport


class TestDelivery:
    def test_basic_delivery(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append((src, payload)))
        transport.attach(2, lambda src, payload: None)
        transport.send(2, 1, {"k": "v"}, 100)
        sim.run()
        assert got == [(2, {"k": "v"})]

    def test_per_pair_fifo_despite_size_overtaking(self):
        # A huge message followed by a tiny one: the tiny one's packet
        # would arrive first without reassembly; FIFO must hold it back.
        sim, net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda src, payload: None)
        transport.attach(3, lambda src, payload: None)
        transport.send(2, 1, "big-then", 5000)
        transport.send(2, 1, "small", 10)
        sim.run()
        assert got == ["big-then", "small"]

    def test_header_overhead_charged(self):
        sim, net, transport = make()
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        transport.send(1, 2, "x", 100)
        sim.run()
        # One data segment plus its ACK cross the (lossless) network.
        assert net.bytes_delivered == (
            100 + ReliableTransport.HEADER_BYTES + ReliableTransport.ACK_BYTES
        )

    def test_messages_delivered_counter(self):
        sim, _net, transport = make()
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        for _ in range(3):
            transport.send(1, 2, "x", 10)
        sim.run()
        assert transport.messages_delivered == 3
        assert transport.segments_sent == 3
        assert transport.acks_sent == 3
        assert transport.retransmits == 0

    def test_bidirectional_pairs_are_independent(self):
        sim, _net, transport = make()
        got = {1: [], 2: []}
        transport.attach(1, lambda src, payload: got[1].append(payload))
        transport.attach(2, lambda src, payload: got[2].append(payload))
        transport.send(1, 2, "a", 10)
        transport.send(2, 1, "b", 10)
        sim.run()
        assert got == {1: ["b"], 2: ["a"]}

    def test_detach_stops_delivery(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda *a: None)
        transport.send(2, 1, "x", 10)
        transport.detach(1)
        sim.run()
        assert got == []

    def test_raw_packet_rejected(self):
        sim, net, transport = make()
        transport.attach(1, lambda *a: None)
        net.send(1, 1, "not-a-segment", 10)
        with pytest.raises(TypeError):
            sim.run()


class TestArqRecovery:
    def test_delivers_through_heavy_loss(self):
        sim, net, transport = make(loss_rate=0.3, seed=11, max_retries=40)
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda *a: None)
        for i in range(30):
            transport.send(2, 1, i, 50)
        sim.run()
        assert got == list(range(30))  # exactly once, in order
        assert transport.retransmits > 0
        assert net.packets_dropped > 0

    def test_lost_ack_causes_duplicate_which_is_suppressed(self):
        # Drop only node 1's downlink: data still reaches node 2, but
        # every ACK flowing 2 -> 1 is eaten, forcing retransmissions.
        sim, net, transport = make()
        net.faults.set_loss_rate(1.0 - 1e-9, node_id=1, direction="down")
        got = []
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda src, payload: got.append(payload))
        transport.send(1, 2, "once", 10)
        sim.run(until=1.0)
        net.faults.set_loss_rate(0.0, node_id=1, direction="down")
        sim.run()
        assert got == ["once"]  # delivered exactly once to the app
        assert transport.duplicates > 0  # but retransmitted on the wire
        assert transport.in_flight(1, 2) == 0  # a late ACK settled it

    def test_retry_exhaustion_fires_failure_callback(self):
        failures = []
        sim, net, transport = make(
            max_retries=3, on_failure=lambda s, d, p: failures.append((s, d, p))
        )
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        net.detach(2)  # peer vanishes below the transport
        transport.send(1, 2, "doomed", 10)
        sim.run()
        assert failures == [(1, 2, "doomed")]
        assert transport.delivery_failures == 1
        assert transport.in_flight(1, 2) == 0

    def test_exponential_backoff_spacing(self):
        sim, net, transport = make(rto_initial=0.1, rto_min=0.1, max_retries=3)
        sends = []
        original = net.send

        def spy(src, dst, payload, size):
            if isinstance(payload, Segment):
                sends.append(sim.now)
            original(src, dst, payload, size)

        net.send = spy
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        net.detach(2)
        transport.send(1, 2, "x", 10)
        sim.run()
        assert len(sends) == 4  # original + 3 retries
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert gaps[0] == pytest.approx(0.1, rel=1e-6)
        assert gaps[1] == pytest.approx(0.2, rel=1e-6)
        assert gaps[2] == pytest.approx(0.4, rel=1e-6)

    def test_backoff_capped_at_rto_max(self):
        sim, net, transport = make(rto_initial=0.1, rto_min=0.1, rto_max=0.15, max_retries=2)
        sends = []
        original = net.send

        def spy(src, dst, payload, size):
            if isinstance(payload, Segment):
                sends.append(sim.now)
            original(src, dst, payload, size)

        net.send = spy
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        net.detach(2)
        transport.send(1, 2, "x", 10)
        sim.run()
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert all(g <= 0.15 + 1e-9 for g in gaps)


class TestRttEstimator:
    def test_srtt_converges_to_path_rtt(self):
        sim, _net, transport = make()
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        for _ in range(20):
            transport.send(1, 2, "x", 100)
            sim.run()  # drain: every sample sees the unloaded path
        srtt = transport.srtt(1, 2)
        assert srtt is not None
        # Two links + propagation each way, a few milliseconds at 1 Mb/s.
        assert 0.0 < srtt < 0.02
        assert transport.rto(1, 2) == transport.rto_min  # clamped

    def test_rto_before_any_sample_is_initial(self):
        _sim, _net, transport = make(rto_initial=0.07)
        assert transport.rto(5, 6) == pytest.approx(0.07)

    def test_retransmit_sample_measures_the_retransmission(self):
        # Timestamp echo (the TCP timestamps option): the ACK names the
        # exact transmission it acknowledges, so a retransmitted
        # segment contributes the *retransmission's* RTT — never the
        # inflated span back to the original send (Karn's ambiguity).
        sim, net, transport = make()
        net.faults.set_loss_rate(0.9999, node_id=2, direction="down")
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        transport.send(1, 2, "x", 10)
        sim.run(until=0.04)
        net.faults.set_loss_rate(0.0, node_id=2, direction="down")
        sim.run()
        assert transport.messages_delivered == 1
        assert transport.retransmits > 0
        srtt = transport.srtt(1, 2)
        assert srtt is not None
        # The path RTT is a few ms; measuring from the original send
        # would have reported ~50 ms (the whole retransmission saga).
        assert srtt < 0.02

    def test_stats_registry_surfaces_transport_counters(self):
        stats = StatsRegistry()
        sim, net, transport = make(loss_rate=0.2, seed=3, max_retries=30)
        transport.stats = stats
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        for _ in range(20):
            transport.send(1, 2, "x", 50)
        sim.run()
        report = stats.as_dict()
        assert report["transport_segments_sent"] == 20
        assert report["transport_retransmits"] == transport.retransmits > 0
        assert report["transport_acks_sent"] == transport.acks_sent
        assert report["transport_rtt_samples"] > 0
        assert report["transport_rtt_us_total"] > 0


class TestDetachStateCleared:
    """Regression: detach used to leak per-pair ARQ state, so a node
    that crashed and re-attached replayed stale sequence numbers and
    wedged the receiver's hold-back queue."""

    def test_crash_and_rejoin_round_trip(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda *a: None)
        for i in range(3):
            transport.send(2, 1, f"pre-{i}", 10)
        sim.run()
        assert got == ["pre-0", "pre-1", "pre-2"]

        transport.detach(2)  # node 2 crashes...
        sim.run()
        transport.attach(2, lambda *a: None)  # ...and reboots fresh

        for i in range(3):
            transport.send(2, 1, f"post-{i}", 10)
        sim.run()
        # Without state clearing, post-* segments restart at seqno 0,
        # look like duplicates of pre-* to node 1, and are swallowed.
        assert got == ["pre-0", "pre-1", "pre-2", "post-0", "post-1", "post-2"]

    def test_receiver_crash_and_rejoin(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda *a: None)
        transport.send(2, 1, "a", 10)
        sim.run()
        transport.detach(1)
        sim.run()
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.send(2, 1, "b", 10)
        sim.run()
        # Node 2's sender state for the pair was also reset at 1's
        # crash, so 1 (expecting seqno 0 again) accepts the message.
        assert got == ["a", "b"]

    def test_detach_cancels_retransmission_timers(self):
        sim, _net, transport = make(rto_initial=0.5)
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        transport.detach(2)
        transport.attach(2, lambda *a: None)
        transport.send(1, 2, "x", 10)
        transport.detach(1)  # sender gone: pending timer must die
        sim.run()
        assert transport.retransmits == 0
        assert transport.delivery_failures == 0
        assert transport.in_flight(1, 2) == 0


class TestWireTypes:
    def test_segment_fields(self):
        segment = Segment(3, "payload", ts=1.25)
        assert segment.seqno == 3
        assert segment.payload == "payload"
        assert segment.ts == 1.25

    def test_ack_fields(self):
        ack = Ack(7, echo_ts=1.25)
        assert ack.seqno == 7
        assert ack.echo_ts == 1.25
