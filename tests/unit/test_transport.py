"""Unit tests for the reliable FIFO transport."""

import pytest

from repro.simnet.engine import Simulator
from repro.simnet.network import StarNetwork
from repro.simnet.transport import ReliableTransport, Segment


def make():
    sim = Simulator()
    net = StarNetwork(sim, bandwidth_bps=1_000_000)
    transport = ReliableTransport(net)
    return sim, net, transport


class TestDelivery:
    def test_basic_delivery(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append((src, payload)))
        transport.attach(2, lambda src, payload: None)
        transport.send(2, 1, {"k": "v"}, 100)
        sim.run()
        assert got == [(2, {"k": "v"})]

    def test_per_pair_fifo_despite_size_overtaking(self):
        # A huge message followed by a tiny one: the tiny one's packet
        # would arrive first without reassembly; FIFO must hold it back.
        sim, net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda src, payload: None)
        transport.attach(3, lambda src, payload: None)
        # Saturate 2's uplink with a big segment, then race a small one
        # from node 3 whose downlink at 1 is free: cross-pair order is
        # unconstrained, same-pair order is preserved.
        transport.send(2, 1, "big-then", 5000)
        transport.send(2, 1, "small", 10)
        sim.run()
        assert got == ["big-then", "small"]

    def test_header_overhead_charged(self):
        sim, net, transport = make()
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        transport.send(1, 2, "x", 100)
        sim.run()
        assert net.bytes_delivered == 100 + ReliableTransport.HEADER_BYTES

    def test_messages_delivered_counter(self):
        sim, _net, transport = make()
        transport.attach(1, lambda *a: None)
        transport.attach(2, lambda *a: None)
        for _ in range(3):
            transport.send(1, 2, "x", 10)
        sim.run()
        assert transport.messages_delivered == 3

    def test_bidirectional_pairs_are_independent(self):
        sim, _net, transport = make()
        got = {1: [], 2: []}
        transport.attach(1, lambda src, payload: got[1].append(payload))
        transport.attach(2, lambda src, payload: got[2].append(payload))
        transport.send(1, 2, "a", 10)
        transport.send(2, 1, "b", 10)
        sim.run()
        assert got == {1: ["b"], 2: ["a"]}

    def test_detach_stops_delivery(self):
        sim, _net, transport = make()
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda *a: None)
        transport.send(2, 1, "x", 10)
        transport.detach(1)
        sim.run()
        assert got == []

    def test_raw_packet_rejected(self):
        sim, net, transport = make()
        transport.attach(1, lambda *a: None)
        net.send(1, 1, "not-a-segment", 10)
        with pytest.raises(TypeError):
            sim.run()


class TestSegment:
    def test_fields(self):
        segment = Segment(3, "payload")
        assert segment.seqno == 3
        assert segment.payload == "payload"
