"""Unit tests for the latency meter and system-level latency tracking."""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.simnet.stats import LatencyMeter


class TestLatencyMeter:
    def test_mean(self):
        meter = LatencyMeter()
        for v in (1.0, 2.0, 3.0):
            meter.record(v)
        assert meter.mean() == pytest.approx(2.0)

    def test_percentiles(self):
        meter = LatencyMeter()
        for v in range(1, 101):
            meter.record(float(v))
        assert meter.percentile(50) == pytest.approx(50.0)
        assert meter.percentile(95) == pytest.approx(95.0)
        assert meter.percentile(100) == pytest.approx(100.0)

    def test_empty_meter(self):
        meter = LatencyMeter()
        assert meter.mean() == 0.0
        assert meter.percentile(50) == 0.0
        assert meter.summary()["count"] == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyMeter().record(-0.1)

    def test_invalid_percentile_rejected(self):
        with pytest.raises(ValueError):
            LatencyMeter().percentile(101)

    def test_summary_keys(self):
        meter = LatencyMeter()
        meter.record(5.0)
        assert set(meter.summary()) == {"count", "mean", "p50", "p95", "max"}


class TestSystemLatency:
    def test_delivery_latency_recorded(self):
        config = RacConfig(
            num_relays=2,
            num_rings=3,
            group_min=2,
            group_max=10**9,
            message_size=2048,
            send_interval=0.05,
            relay_timeout=1.0,
            predecessor_timeout=0.5,
            rate_window=1.0,
            blacklist_period=0.0,
            puzzle_bits=2,
        )
        system = RacSystem(config, seed=41)
        nodes = system.bootstrap(10)
        system.run(1.2)
        system.send(nodes[0], nodes[4], b"timed message")
        system.run(4.0)
        assert len(system.latency_meter) == 1
        latency = system.latency_meter.samples[0]
        # At least L+1 origination slots; comfortably under a second
        # for this configuration.
        assert 0.05 < latency < 2.0
