"""Unit tests for the anonymous pub/sub layer (repro.pubsub).

The centerpiece regression here is the stale-gid bug the old
``examples/anonymous_pubsub.py`` demo carried: it cached ``(pseudonym
key, group id)`` at *subscribe* time, so the first group split between
subscribe and publish routed fan-out onions at a group the subscriber
no longer belonged to. The topic directory now stores routing ids and
resolves groups at publish time; these tests split a directory between
subscribe and publish and assert delivery still lands.
"""

import math

import pytest

from repro.core.config import RacConfig
from repro.crypto.keys import KeyPair
from repro.groups.manager import GroupDirectory
from repro.orchestrator.workloads import WorkerContext, resolve_workload
from repro.pubsub import (
    AdmissionError,
    AdmissionTicket,
    BoundedQueue,
    CapacityModel,
    SimPubSub,
    TopicDirectory,
    capacity_table,
    decode_publish,
    encode_publish,
    render_capacity_table,
    solve_ticket,
    ticket_material,
)
from repro.simnet.stats import StatsRegistry


def _key(seed: int):
    return KeyPair.generate("sim", seed=seed).public


def _config(**overrides):
    base = dict(
        group_min=3,
        group_max=6,
        relay_timeout=60.0,
        predecessor_timeout=60.0,
        rate_window=60.0,
    )
    base.update(overrides)
    return RacConfig.small(**base)


class TestBoundedQueue:
    def test_fifo_and_overflow_drops_oldest(self):
        stats = StatsRegistry()
        q = BoundedQueue(3, stats, "test_q")
        assert q.push("a") is None
        assert q.push("b") is None
        assert q.push("c") is None
        # Overflow evicts the OLDEST item and counts the drop.
        assert q.push("d") == "a"
        assert stats.value("test_q_dropped") == 1
        assert stats.value("test_q_enqueued") == 4
        assert q.drain() == ["b", "c", "d"]
        assert q.pop() is None

    def test_requeue_front_preserves_order(self):
        stats = StatsRegistry()
        q = BoundedQueue(4, stats, "test_q")
        for item in ("a", "b", "c"):
            q.push(item)
        head = q.pop()
        q.requeue_front(head)
        assert q.drain(2) == ["a", "b"]
        assert len(q) == 1

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            BoundedQueue(0, StatsRegistry(), "bad")


class TestTopicDirectory:
    def test_duplicate_subscribe_rejected(self):
        topics = TopicDirectory()
        key = _key(1)
        assert topics.subscribe("news", key, 101)
        assert not topics.subscribe("news", key, 101)
        assert topics.subscriber_count("news") == 1

    def test_unsubscribe_and_reap(self):
        topics = TopicDirectory()
        k1, k2 = _key(1), _key(2)
        topics.subscribe("news", k1, 101)
        topics.subscribe("news", k2, 102)
        topics.subscribe("sport", k2, 102)
        assert topics.unsubscribe("news", k1, 101)
        assert not topics.unsubscribe("news", k1, 101)
        # A departed node's registrations vanish from every topic.
        reaped = topics.reap(102)
        assert {s.topic for s in reaped} == {"news", "sport"}
        assert topics.topics() == []
        assert topics.total_subscriptions() == 0

    def test_empty_topic_rejected(self):
        with pytest.raises(ValueError):
            TopicDirectory().subscribe("", _key(1), 1)

    def test_resolution_survives_split(self):
        """The stale-gid regression, distilled: the group id a
        subscriber had at subscribe time is NOT the one fan-out uses
        after the directory splits."""
        directory = GroupDirectory(num_rings=3, smin=2, smax=4)
        node_ids = [10, 2**126, 2**127, 2**127 + 10]
        for nid in node_ids:
            directory.add_node(nid)
        topics = TopicDirectory()
        key = _key(7)
        subscriber = node_ids[0]
        topics.subscribe("news", key, subscriber)
        gid_at_subscribe = directory.group_of_node(subscriber).gid

        before = topics.resolve("news", directory)
        assert [(s.routing_id, gid) for s, gid in before] == [
            (subscriber, gid_at_subscribe)
        ]

        # Push the subscriber's half of the ID space past smax.
        grew = [1, 2, 3, 4]
        for nid in grew:
            directory.add_node(nid)
        assert directory.event_counts.get("split", 0) >= 1

        after = topics.resolve("news", directory)
        gid_now = directory.group_of_node(subscriber).gid
        assert [(s.routing_id, gid) for s, gid in after] == [(subscriber, gid_now)]
        # The split really moved the subscriber (the point of the test).
        assert gid_now != gid_at_subscribe

    def test_resolve_memo_tracks_directory_version(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=4)
        directory.add_node(5)
        topics = TopicDirectory()
        topics.subscribe("news", _key(1), 5)
        first = topics.resolve("news", directory)
        assert topics.resolve("news", directory) == first  # memo hit
        version = directory.version
        directory.add_node(6)
        assert directory.version > version  # any event invalidates
        assert topics.resolve("news", directory)

    def test_resolve_reaps_stale_routing_ids(self):
        directory = GroupDirectory(num_rings=3, smin=2, smax=None)
        directory.add_node(5)
        topics = TopicDirectory()
        topics.subscribe("news", _key(1), 5)
        topics.subscribe("news", _key(2), 77)  # never joined (evicted race)
        resolved = topics.resolve("news", directory)
        assert [s.routing_id for s, _ in resolved] == [5]
        assert topics.subscriber_count("news") == 1


class TestAdmission:
    def test_ticket_round_trip(self):
        config = _config()
        ticket = solve_ticket(config, base=4242)
        material = ticket_material(config, ticket, index=9)
        assert material.node_id == ticket.node_id
        assert material.index == 9
        assert material.puzzle.attempts == 0  # the client paid the search
        # Key derivation mirrors the factory seeds (base*2 / base*2+1).
        assert material.id_keypair.public == KeyPair.generate(
            config.key_backend, seed=4242 * 2
        ).public

    def test_forged_ticket_rejected(self):
        config = _config()
        ticket = solve_ticket(config, base=4242)
        forged = AdmissionTicket(
            base=ticket.base, vector=ticket.vector + 1, node_id=ticket.node_id
        )
        with pytest.raises(AdmissionError):
            ticket_material(config, forged, index=9)

    def test_json_round_trip(self):
        ticket = solve_ticket(_config(), base=7)
        assert AdmissionTicket.from_json(ticket.to_json()) == ticket

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            solve_ticket(_config(), base=0)


class TestPublishEncoding:
    def test_round_trip(self):
        payload = encode_publish("news", 3, b"\x00\xffhello")
        assert decode_publish(payload) == ("news", 3, b"\x00\xffhello")

    def test_garbage_is_none(self):
        assert decode_publish(b"\x00\x01\x02") is None
        assert decode_publish(b'{"other": "json"}') is None


class TestCapacityModel:
    def test_group_rate_is_size_free(self):
        model = CapacityModel(RacConfig())
        # C / ((L+1) * R * M * 8): members add uplinks and cover in
        # lockstep, so the per-group rate has no g term at all.
        config = model.config
        expected = config.link_bandwidth_bps / (
            (config.num_relays + 1) * config.num_rings * config.message_size * 8
        )
        assert model.group_msgs_per_sec() == pytest.approx(expected)

    def test_plan_inverts_to_groups(self):
        model = CapacityModel(RacConfig())
        point = model.plan(1000.0, anonymity_degree=500, subscribers_per_topic=10)
        per_group = model.group_msgs_per_sec()
        assert point.groups == max(1, math.ceil(1000.0 * 10 / per_group))
        assert point.members == point.groups * 500
        assert point.publishes_per_sec == pytest.approx(
            point.groups * per_group / 10
        )

    def test_plan_validates(self):
        model = CapacityModel(RacConfig())
        with pytest.raises(ValueError):
            model.plan(0.0, 500)
        with pytest.raises(ValueError):
            model.plan(1.0, model.config.group_min - 1)
        with pytest.raises(ValueError):
            model.publishes_per_sec(1, 0)

    def test_table_renders(self):
        points = capacity_table(RacConfig())
        text = render_capacity_table(points, RacConfig())
        assert "anonymity degree" in text
        assert len(points) == 4 * 3 * 3


class TestSimPubSub:
    def test_stale_gid_regression_split_between_subscribe_and_publish(self):
        """Subscribe, split the subscriber's group via dynamic joins,
        THEN publish: delivery must still land (the old demo's cached
        gid would have routed the onion at the pre-split group)."""
        service = SimPubSub(_config(), seed=99)
        nodes = service.bootstrap(8)
        service.run(1.0)

        reader = nodes[5]
        service.subscribe(reader, "leaks")
        gid_before = service.system.directory.group_of_node(reader).gid
        splits_before = service.system.directory.event_counts.get("split", 0)

        while service.system.directory.event_counts.get("split", 0) == splits_before:
            service.join()

        service.publish(nodes[0], "leaks", b"post-split")
        service.run(12.0)

        parity = service.parity()
        assert parity.ok, f"missing fan-outs: {parity.missing}"
        assert parity.delivered == 1
        got = [decode_publish(p) for p in service.system.delivered_messages(reader)]
        assert ("leaks", 1, b"post-split") in got
        assert not service.system.evicted
        # The run must actually have moved someone for this to regress.
        moved_or_split = (
            service.system.directory.group_of_node(reader).gid != gid_before
            or service.system.directory.event_counts["split"] > splits_before
        )
        assert moved_or_split

    def test_unsubscribe_stops_fanout(self):
        service = SimPubSub(_config(), seed=3)
        nodes = service.bootstrap(6)
        service.run(1.0)
        service.subscribe(nodes[1], "news")
        service.publish(nodes[0], "news", b"one")
        service.run(8.0)
        service.unsubscribe(nodes[1], "news")
        service.publish(nodes[0], "news", b"two")
        service.run(8.0)
        parity = service.parity()
        assert parity.ok
        assert parity.delivered == 1  # only the pre-unsubscribe publish

    def test_leaver_subscriptions_are_excused(self):
        service = SimPubSub(_config(), seed=5)
        nodes = service.bootstrap(8)
        service.run(1.0)
        service.subscribe(nodes[1], "news")
        service.subscribe(nodes[2], "news")
        service.publish(nodes[0], "news", b"payload")
        service.leave(nodes[1])  # departs with the fan-out in flight
        service.run(12.0)
        parity = service.parity()
        assert parity.ok  # the leaver's copy is excused, not missing
        assert nodes[1] in service.excused()


class TestPubSubWorkload:
    def test_pubsub_point_clean_churn_cell(self):
        fn = resolve_workload("pubsub_point")
        params = {
            "nodes": 8,
            "duration": 6.0,
            "joins": 6,
            "leaves": 6,
            "relay_timeout": 60.0,
            "predecessor_timeout": 60.0,
            "rate_window": 60.0,
        }
        metrics = fn(params, 0, WorkerContext())
        assert metrics["splits"] >= 1
        assert metrics["dissolves"] >= 1
        assert metrics["evictions"] == 0
        assert metrics["parity_missing"] == 0
        assert metrics["deliveries"] == metrics["fanout_expected"]
        # Deterministic in (params, seed): the pool's retry contract.
        assert fn(params, 0, WorkerContext()) == metrics
