"""Unit tests for the Nash-equilibrium deviation analysis."""

import pytest

from repro.analysis.gametheory import Deviation, NashAnalysis, UtilityWeights


class TestUtilityWeights:
    def test_defaults_respect_paper_ordering(self):
        w = UtilityWeights()
        assert min(w.alpha, w.beta, w.gamma) > max(w.delta, w.omega, w.phi)

    def test_violating_ordering_rejected(self):
        with pytest.raises(ValueError):
            UtilityWeights(alpha=0.01, delta=1.0)

    def test_honest_round_utility(self):
        assert UtilityWeights(alpha=1, beta=2, gamma=3).honest_round_utility() == 6


class TestDetectionMachinery:
    def test_follower_threshold_t_plus_one(self):
        analysis = NashAnalysis(num_rings=7, opponent_fraction=0.1)
        assert analysis.follower_threshold() == 2  # ceil(0.7)=1, +1

    def test_follower_detection_nearly_certain_at_low_f(self):
        analysis = NashAnalysis(num_rings=7, opponent_fraction=0.05)
        assert analysis.follower_detection_probability() > 0.999

    def test_detection_decreases_with_more_opponents(self):
        low = NashAnalysis(num_rings=7, opponent_fraction=0.05)
        high = NashAnalysis(num_rings=7, opponent_fraction=0.4)
        assert high.follower_detection_probability() < low.follower_detection_probability()

    def test_relay_eviction_rate_scales_with_traffic(self):
        slow = NashAnalysis(relayed_onions_per_round=0.1)
        fast = NashAnalysis(relayed_onions_per_round=10.0)
        assert fast.relay_eviction_rate() > slow.relay_eviction_rate()

    def test_majority_opponents_rejected(self):
        with pytest.raises(ValueError):
            NashAnalysis(opponent_fraction=0.6)


class TestTheorem1:
    def test_paper_configuration_is_nash(self):
        assert NashAnalysis().is_nash_equilibrium()

    def test_all_seven_lemmas_covered(self):
        lemmas = sorted(d.lemma for d in NashAnalysis().deviations())
        assert lemmas == [1, 2, 3, 4, 5, 6, 7]

    def test_every_deviation_loses(self):
        for outcome in NashAnalysis().evaluate_all():
            assert outcome.gain < 0, outcome.deviation.name

    def test_detected_deviations_have_finite_horizon(self):
        for outcome in NashAnalysis().evaluate_all():
            if outcome.deviation.detection_probability > 0:
                assert outcome.expected_rounds_until_eviction < float("inf")

    def test_equilibrium_breaks_without_eviction(self):
        # Sanity: if detection were impossible AND there were no
        # self-inflicted losses, freeriding would pay — i.e. the
        # equilibrium really is carried by the protocol's checks.
        analysis = NashAnalysis()
        fantasy = Deviation(
            name="freeride-without-consequences",
            lemma=0,
            forwarding_saved=1.0,
            detection_probability=0.0,
            self_inflicted_loss=0.0,
        )
        outcome = analysis.evaluate(fantasy)
        assert outcome.gain > 0

    def test_holds_across_opponent_fractions(self):
        for f in (0.0, 0.1, 0.3, 0.49):
            assert NashAnalysis(opponent_fraction=f).is_nash_equilibrium(), f

    def test_holds_with_small_groups(self):
        assert NashAnalysis(group_size=20).is_nash_equilibrium()

    def test_holds_when_mostly_idle(self):
        assert NashAnalysis(idle_fraction=0.95).is_nash_equilibrium()
