"""Unit tests for the live asyncio runtime building blocks.

The full-cluster and parity runs live in
``tests/integration/test_live_parity.py``; this module covers the
pieces in isolation: framing, the bootstrap directory, deterministic
identity material, and the NodeEnvironment protocol conformance of
both substrates.
"""

import asyncio

import pytest

from repro.core.config import RacConfig
from repro.core.environment import NodeEnvironment
from repro.core.identity import build_population
from repro.core.system import RacSystem
from repro.core.wire import WireError
from repro.live.cluster import LiveCluster, LiveReport, live_config
from repro.live.directory import BootstrapDirectory, DirectoryClient, RosterEntry
from repro.live.environment import LiveEnvironment
from repro.live.framing import (
    MAX_FRAME,
    decode_hello,
    encode_hello,
    read_frame,
    write_frame,
)


def run(coro):
    return asyncio.run(coro)


# ---------------------------------------------------------------------------
# framing
# ---------------------------------------------------------------------------


def test_hello_roundtrip():
    for node_id in (0, 1, 0xDEADBEEF, (1 << 128) - 1):
        assert decode_hello(encode_hello(node_id)) == node_id


def test_hello_rejects_bad_sizes():
    with pytest.raises(WireError):
        decode_hello(b"\x00" * 15)
    with pytest.raises(WireError):
        encode_hello(1 << 128)


def test_frame_roundtrip_over_tcp():
    async def scenario():
        received = []
        done = asyncio.Event()

        async def handler(reader, writer):
            received.append(await read_frame(reader))
            received.append(await read_frame(reader))
            done.set()
            writer.close()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        write_frame(writer, b"hello")
        write_frame(writer, b"")  # empty frames are legal
        await writer.drain()
        await asyncio.wait_for(done.wait(), timeout=5)
        writer.close()
        server.close()
        await server.wait_closed()
        return received

    assert run(scenario()) == [b"hello", b""]


def test_oversized_frames_rejected_both_directions():
    async def scenario():
        caught = []

        async def handler(reader, writer):
            try:
                await read_frame(reader)
            except WireError as exc:
                caught.append(exc)
            writer.close()

        server = await asyncio.start_server(handler, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        # Writing an oversized frame is refused locally...
        with pytest.raises(WireError):
            write_frame(writer, b"x" * (MAX_FRAME + 1))
        # ...and a forged oversized length prefix is refused before the
        # reader allocates anything.
        writer.write((MAX_FRAME + 1).to_bytes(4, "big"))
        await writer.drain()
        await asyncio.sleep(0.1)
        writer.close()
        server.close()
        await server.wait_closed()
        return caught

    assert len(run(scenario())) == 1


# ---------------------------------------------------------------------------
# bootstrap directory
# ---------------------------------------------------------------------------


def _entries(count):
    config = RacConfig.small()
    return [
        RosterEntry(
            node_id=m.node_id,
            host="127.0.0.1",
            port=9000 + i,
            id_key=m.id_keypair.public,
            pseudonym_key=m.pseudonym_keypair.public,
        )
        for i, m in enumerate(build_population(config, count))
    ]


def test_roster_entry_json_roundtrip():
    entry = _entries(1)[0]
    assert RosterEntry.from_json(entry.to_json()) == entry


def test_directory_register_and_wait_roster():
    async def scenario():
        directory = BootstrapDirectory()
        await directory.start()
        entries = _entries(3)
        client = DirectoryClient(*directory.address)

        async def late_register():
            await asyncio.sleep(0.05)
            for entry in entries[1:]:
                await client.register(entry)

        await client.register(entries[0])
        task = asyncio.get_running_loop().create_task(late_register())
        roster = await client.wait_roster(3, timeout=5)
        await task
        await directory.close()
        return roster

    roster = run(scenario())
    assert [e.node_id for e in roster] == sorted(e.node_id for e in roster)
    assert {e.node_id for e in roster} == {e.node_id for e in _entries(3)}


def test_directory_rejects_garbage_without_dying():
    async def scenario():
        directory = BootstrapDirectory()
        await directory.start()
        reader, writer = await asyncio.open_connection(*directory.address)
        writer.write(b"this is not json\n")
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=5)
        writer.close()
        # The directory must still serve well-formed clients after.
        client = DirectoryClient(*directory.address)
        count = await client.register(_entries(1)[0])
        await directory.close()
        return line, count

    line, count = run(scenario())
    assert b'"ok": false' in line
    assert count == 1


# ---------------------------------------------------------------------------
# identity determinism
# ---------------------------------------------------------------------------


def test_build_population_matches_system_bootstrap():
    """The live runtime's standalone population must be the exact
    population a same-seeded RacSystem creates — ids, keys and all."""
    config = live_config()
    system = RacSystem(config, seed=11)
    node_ids = system.bootstrap(6)
    population = build_population(config, 6, seed=11)
    assert [m.node_id for m in population] == node_ids
    for material in population:
        node = system.nodes[material.node_id]
        assert node.id_keypair.public == material.id_keypair.public
        assert node.pseudonym_keypair.public == material.pseudonym_keypair.public


# ---------------------------------------------------------------------------
# NodeEnvironment protocol conformance
# ---------------------------------------------------------------------------


def test_both_substrates_satisfy_node_environment():
    system = RacSystem(RacConfig.small(), seed=0)
    assert isinstance(system, NodeEnvironment)

    config = live_config()
    roster = _entries(4)
    env = LiveEnvironment(roster[0].node_id, config, roster)
    assert isinstance(env, NodeEnvironment)


def test_live_environment_membership_replica():
    config = live_config()
    roster = _entries(5)
    env = LiveEnvironment(roster[0].node_id, config, roster)
    for entry in roster:
        gid = env.group_of(entry.node_id)
        view = env.domain_view(("group", gid))
        assert view is not None and entry.node_id in view
    # Replicas built from the same roster agree on every ring.
    other = LiveEnvironment(roster[1].node_id, config, roster)
    for entry in roster:
        gid = env.group_of(entry.node_id)
        assert other.group_of(entry.node_id) == gid
        assert other.domain_view(("group", gid)).members == env.domain_view(
            ("group", gid)
        ).members


def test_live_environment_eviction_updates_replica():
    config = live_config()
    roster = _entries(4)
    env = LiveEnvironment(roster[0].node_id, config, roster)
    victim = roster[2].node_id
    env.apply_eviction(victim)
    assert victim not in env.peers
    gid = env.group_of(roster[0].node_id)
    view = env.domain_view(("group", gid))
    assert view is None or victim not in view
    # Idempotent: applying again is a no-op, not an error.
    env.apply_eviction(victim)


# ---------------------------------------------------------------------------
# cluster plumbing
# ---------------------------------------------------------------------------


def test_cluster_requires_two_nodes():
    with pytest.raises(ValueError):
        LiveCluster(1)


def test_live_report_aggregation():
    report = LiveReport(
        nodes=2,
        duration=1.0,
        delivered={1: [b"a", b"b"], 2: [b"c"]},
        per_node={
            1: {"accusation_replay": 1, "live_frames_sent": 10},
            2: {"accusation_rate-low": 2, "live_frames_sent": 5},
        },
        evicted=[7],
    )
    assert report.deliveries == 3
    assert report.accusations == 3
    assert report.counters()["live_frames_sent"] == 15
    assert report.delivered_multiset() == [b"a", b"b", b"c"]
    text = report.render()
    assert "anonymous deliveries : 3" in text
    assert "evictions            : 1" in text
