"""Unit tests for the ring-reliability (dissemination coverage) sweep."""

import pytest

from repro.experiments.dissemination import (
    coverage_vs_rings,
    measure_coverage,
    render_coverage,
)


class TestMeasureCoverage:
    def test_no_opponents_full_coverage(self):
        point = measure_coverage(50, num_rings=1, opponent_fraction=0.0, trials=20)
        assert point.mean_coverage == 1.0
        assert point.full_coverage_rate == 1.0

    def test_single_ring_is_fragile(self):
        point = measure_coverage(100, num_rings=1, opponent_fraction=0.1, trials=50, seed=1)
        assert point.full_coverage_rate < 0.2

    def test_many_rings_are_robust(self):
        point = measure_coverage(100, num_rings=7, opponent_fraction=0.1, trials=50, seed=2)
        assert point.full_coverage_rate > 0.95

    def test_redundancy_is_monotone(self):
        points = coverage_vs_rings(group_size=80, ring_counts=(1, 3, 7), trials=60, seed=3)
        coverages = [p.mean_coverage for p in points]
        assert coverages == sorted(coverages)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            measure_coverage(50, 3, opponent_fraction=1.0)

    def test_render(self):
        points = coverage_vs_rings(group_size=40, ring_counts=(1, 3), trials=10)
        text = render_coverage(points, group_size=40)
        assert "Broadcast reliability" in text and "R (rings)" in text
