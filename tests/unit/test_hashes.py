"""Unit tests for repro.crypto.hashes."""

import pytest

from repro.crypto import hashes


class TestSha256Int:
    def test_deterministic(self):
        assert hashes.sha256_int(b"abc") == hashes.sha256_int(b"abc")

    def test_distinct_inputs_differ(self):
        assert hashes.sha256_int(b"abc") != hashes.sha256_int(b"abd")

    def test_length_prefixing_prevents_concatenation_ambiguity(self):
        assert hashes.sha256_int(b"ab", b"c") != hashes.sha256_int(b"a", b"bc")

    def test_accepts_strings_and_ints(self):
        assert hashes.sha256_int("abc") == hashes.sha256_int(b"abc")
        assert isinstance(hashes.sha256_int(12345), int)

    def test_result_within_hash_bits(self):
        assert 0 <= hashes.sha256_int(b"x") < (1 << hashes.HASH_BITS)

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            hashes.sha256_int(-1)

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            hashes.sha256_int(3.14)


class TestOnewayFunctions:
    def test_f_and_g_are_domain_separated(self):
        assert hashes.oneway_f(b"v") != hashes.sha256_int(b"v")
        assert hashes.oneway_g(b"k", b"v") != hashes.oneway_f(b"v")

    def test_g_depends_on_both_arguments(self):
        base = hashes.oneway_g(1, 2)
        assert base != hashes.oneway_g(1, 3)
        assert base != hashes.oneway_g(2, 2)

    def test_g_argument_order_matters(self):
        assert hashes.oneway_g(1, 2) != hashes.oneway_g(2, 1)


class TestTruncatedBits:
    def test_masks_low_bits(self):
        assert hashes.truncated_bits(0b101101, 3) == 0b101

    def test_zero_bits_is_zero(self):
        assert hashes.truncated_bits(12345, 0) == 0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            hashes.truncated_bits(1, -1)


class TestRingPosition:
    def test_different_rings_give_different_positions(self):
        node = 42
        positions = {hashes.ring_position(node, r) for r in range(8)}
        assert len(positions) == 8

    def test_different_nodes_give_different_positions(self):
        assert hashes.ring_position(1, 0) != hashes.ring_position(2, 0)

    def test_negative_ring_rejected(self):
        with pytest.raises(ValueError):
            hashes.ring_position(1, -1)


class TestMessageId:
    def test_stable(self):
        assert hashes.message_id(b"payload") == hashes.message_id(b"payload")

    def test_content_sensitive(self):
        assert hashes.message_id(b"payload") != hashes.message_id(b"payloae")
