"""Unit tests for membership views and broadcast receipt state."""

import pytest

from repro.crypto.keys import KeyPair
from repro.overlay.broadcast import BroadcastState
from repro.overlay.membership import MembershipView


class TestMembershipView:
    def test_add_with_key(self):
        view = MembershipView(num_rings=2)
        key = KeyPair.generate("sim", seed=1).public
        view.add(10, key)
        assert 10 in view
        assert view.id_key(10) is key

    def test_add_is_idempotent(self):
        view = MembershipView(num_rings=2)
        view.add(10)
        view.add(10)  # repeated JOIN broadcast
        assert len(view) == 1

    def test_late_key_registration(self):
        view = MembershipView(num_rings=2)
        view.add(10)
        assert view.id_key(10) is None
        key = KeyPair.generate("sim", seed=1).public
        view.add(10, key)
        assert view.id_key(10) is key

    def test_nodes_with_keys_excludes_keyless(self):
        view = MembershipView(num_rings=2)
        view.add(1, KeyPair.generate("sim", seed=1).public)
        view.add(2)
        assert view.nodes_with_keys() == [1] or view.nodes_with_keys() == [1]

    def test_remove_is_idempotent(self):
        view = MembershipView(num_rings=2)
        view.add(1)
        view.remove(1)
        view.remove(1)
        assert len(view) == 0

    def test_neighbour_shortcuts_match_topology(self):
        view = MembershipView(num_rings=3, members=range(8))
        assert view.successors(0) == view.topology.successors(0)
        assert view.predecessor_set(0) == view.topology.predecessor_set(0)


class TestBroadcastState:
    def test_first_copy_is_new(self):
        state = BroadcastState()
        assert state.on_receive(100, (1, 0), now=0.0)
        assert not state.on_receive(100, (2, 0), now=0.1)

    def test_self_origination(self):
        state = BroadcastState()
        assert state.on_receive(100, None, now=0.0)
        assert 100 in state

    def test_copies_counted_per_predecessor_and_ring(self):
        state = BroadcastState()
        state.on_receive(100, (1, 0), 0.0)
        state.on_receive(100, (1, 1), 0.1)
        state.on_receive(100, (1, 1), 0.2)
        assert state.copies_from(100, (1, 0)) == 1
        assert state.copies_from(100, (1, 1)) == 2

    def test_missing_predecessors(self):
        state = BroadcastState()
        state.on_receive(100, (1, 0), 0.0)
        expected = {(1, 0), (2, 1), (3, 2)}
        assert state.missing_predecessors(100, expected) == {(2, 1), (3, 2)}

    def test_missing_for_unknown_message_is_everyone(self):
        state = BroadcastState()
        expected = {(1, 0)}
        assert state.missing_predecessors(999, expected) == expected

    def test_replay_detection_is_per_ring(self):
        state = BroadcastState()
        state.on_receive(100, (1, 0), 0.0)
        state.on_receive(100, (1, 1), 0.1)  # second ring: legitimate
        assert state.replaying_predecessors(100) == set()
        state.on_receive(100, (1, 0), 0.2)  # same ring twice: replay
        assert state.replaying_predecessors(100) == {(1, 0)}

    def test_garbage_collection(self):
        state = BroadcastState()
        state.on_receive(1, None, 0.0)
        state.on_receive(2, None, 5.0)
        dropped = state.forget_before(1.0)
        assert dropped == 1
        assert 1 not in state and 2 in state

    def test_record_access(self):
        state = BroadcastState()
        state.on_receive(1, (9, 0), 3.5)
        record = state.record(1)
        assert record.first_seen_at == 3.5
        assert state.record(2) is None
