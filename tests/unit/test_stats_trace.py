"""Unit tests for stats meters and the tracer."""

import pytest

from repro.simnet.stats import (
    Counter,
    StatsRegistry,
    ThroughputMeter,
    aggregate_stats_reports,
    summarize,
)
from repro.simnet.trace import TraceEvent, Tracer


class TestThroughputMeter:
    def test_throughput_over_window(self):
        meter = ThroughputMeter()
        meter.record(1.0, 1000)
        meter.record(2.0, 1000)
        # 2000 bytes over [0, 2] seconds = 8000 bits/s
        assert meter.throughput_bps(0.0, 2.0) == pytest.approx(8000)

    def test_window_excludes_outside_samples(self):
        meter = ThroughputMeter()
        meter.record(0.5, 1000)
        meter.record(5.0, 1000)
        assert meter.throughput_bps(1.0, 3.0) == pytest.approx(0.0)

    def test_empty_meter(self):
        assert ThroughputMeter().throughput_bps() == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().record(0.0, -1)

    def test_deliveries_count(self):
        meter = ThroughputMeter()
        for t in (0.1, 0.2, 5.0):
            meter.record(t, 10)
        assert meter.deliveries(0.0, 1.0) == 2
        assert meter.count == 3

    def test_default_end_is_last_sample(self):
        meter = ThroughputMeter()
        meter.record(2.0, 250)
        assert meter.throughput_bps() == pytest.approx(1000)


class TestStatsRegistry:
    def test_counters_accumulate(self):
        stats = StatsRegistry()
        stats.add("x")
        stats.add("x", 4)
        assert stats.value("x") == 5

    def test_missing_counter_is_zero(self):
        assert StatsRegistry().value("nope") == 0

    def test_as_dict_sorted(self):
        stats = StatsRegistry()
        stats.add("b")
        stats.add("a")
        assert list(stats.as_dict()) == ["a", "b"]

    def test_counter_identity(self):
        stats = StatsRegistry()
        c1 = stats.counter("x")
        c2 = stats.counter("x")
        assert c1 is c2


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["count"] == 3

    def test_empty(self):
        assert summarize([])["count"] == 0


class TestTracer:
    def test_records_and_filters(self):
        tracer = Tracer()
        tracer.record(1.0, "send", node=5, size=100)
        tracer.record(2.0, "recv", node=6)
        assert len(tracer) == 2
        assert [e.node for e in tracer.of_kind("send")] == [5]

    def test_disabled_tracer_is_silent(self):
        tracer = Tracer(enabled=False)
        tracer.record(1.0, "send", node=5)
        assert len(tracer) == 0

    def test_kinds_tally(self):
        tracer = Tracer()
        for _ in range(3):
            tracer.record(0.0, "a")
        tracer.record(0.0, "b")
        assert tracer.kinds() == {"a": 3, "b": 1}

    def test_render_includes_details(self):
        tracer = Tracer()
        tracer.record(0.001, "evt", node=7, foo="bar")
        text = tracer.render()
        assert "node 7" in text and "foo=bar" in text

    def test_event_str_system_scope(self):
        event = TraceEvent(0.0, "boot", None, {})
        assert "system" in str(event)


class TestAggregateStatsReports:
    def test_engine_counters_sum_across_shards(self):
        # One engine per shard: the deployment-wide report must be the
        # sum of the shard engines' counters, not any single engine's.
        shard_a = {
            "sim_events_processed": 1000,
            "sim_events_cancelled": 10,
            "sim_queue_compactions": 1,
            "deliveries": 4,
        }
        shard_b = {
            "sim_events_processed": 2500,
            "sim_events_cancelled": 30,
            "sim_queue_compactions": 2,
            "deliveries": 7,
        }
        merged = aggregate_stats_reports([shard_a, shard_b])
        assert merged["sim_events_processed"] == 3500
        assert merged["sim_events_cancelled"] == 40
        assert merged["sim_queue_compactions"] == 3
        assert merged["deliveries"] == 11

    def test_missing_keys_count_as_zero(self):
        # Shards legitimately differ (only one hosts the deviant's
        # group), so a key absent from some shards still aggregates.
        merged = aggregate_stats_reports([{"evictions": 1}, {}, {"noise_sent": 5}])
        assert merged == {"evictions": 1, "noise_sent": 5}

    def test_empty_input(self):
        assert aggregate_stats_reports([]) == {}

    def test_meter_samples_property_round_trips(self):
        # ThroughputMeter stores samples in typed arrays; the samples
        # view must still yield (time, bytes) tuples for the renderers.
        meter = ThroughputMeter()
        meter.record(1.5, 100)
        meter.record(2.0, 200)
        assert meter.samples == [(1.5, 100), (2.0, 200)]
