"""Unit tests for repro.crypto.dh (Diffie-Hellman KEM)."""

import pytest

from repro.crypto import dh


class TestKeyGeneration:
    def test_seeded_generation_is_deterministic(self):
        a = dh.generate_keypair(dh.GROUP_TEST, seed=42)
        b = dh.generate_keypair(dh.GROUP_TEST, seed=42)
        assert a.exponent == b.exponent

    def test_different_seeds_differ(self):
        a = dh.generate_keypair(dh.GROUP_TEST, seed=1)
        b = dh.generate_keypair(dh.GROUP_TEST, seed=2)
        assert a.exponent != b.exponent

    def test_unseeded_generation_is_random(self):
        a = dh.generate_keypair(dh.GROUP_TEST)
        b = dh.generate_keypair(dh.GROUP_TEST)
        assert a.exponent != b.exponent

    def test_public_key_in_group(self):
        keypair = dh.generate_keypair(dh.GROUP_TEST, seed=7)
        pub = keypair.public_key()
        assert 1 < pub.value < dh.GROUP_TEST.prime


class TestSharedSecret:
    def test_agreement(self):
        alice = dh.generate_keypair(dh.GROUP_TEST, seed=1)
        bob = dh.generate_keypair(dh.GROUP_TEST, seed=2)
        assert alice.shared_secret(bob.public_key()) == bob.shared_secret(alice.public_key())

    def test_third_party_differs(self):
        alice = dh.generate_keypair(dh.GROUP_TEST, seed=1)
        bob = dh.generate_keypair(dh.GROUP_TEST, seed=2)
        eve = dh.generate_keypair(dh.GROUP_TEST, seed=3)
        assert alice.shared_secret(bob.public_key()) != alice.shared_secret(eve.public_key())

    def test_secret_is_32_bytes(self):
        alice = dh.generate_keypair(dh.GROUP_TEST, seed=1)
        bob = dh.generate_keypair(dh.GROUP_TEST, seed=2)
        assert len(alice.shared_secret(bob.public_key())) == 32

    def test_cross_group_rejected(self):
        small = dh.generate_keypair(dh.GROUP_TEST, seed=1)
        large = dh.generate_keypair(dh.GROUP_2048, seed=2)
        with pytest.raises(ValueError):
            small.shared_secret(large.public_key())


class TestGroup2048:
    def test_agreement_on_real_group(self):
        alice = dh.generate_keypair(dh.GROUP_2048, seed=1)
        bob = dh.generate_keypair(dh.GROUP_2048, seed=2)
        assert alice.shared_secret(bob.public_key()) == bob.shared_secret(alice.public_key())

    def test_prime_is_2048_bits(self):
        assert dh.GROUP_2048.prime.bit_length() == 2048


class TestFingerprint:
    def test_stable_and_distinct(self):
        a = dh.generate_keypair(dh.GROUP_TEST, seed=1).public_key()
        b = dh.generate_keypair(dh.GROUP_TEST, seed=2).public_key()
        assert a.fingerprint() == a.fingerprint()
        assert a.fingerprint() != b.fingerprint()
