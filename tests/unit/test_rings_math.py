"""Unit tests for ring-count mathematics."""

import pytest

from repro.analysis import rings_math


class TestBinomial:
    def test_pmf_sums_to_one(self):
        total = sum(rings_math.binomial_pmf(7, k, 0.3) for k in range(8))
        assert total == pytest.approx(1.0)

    def test_out_of_range_is_zero(self):
        assert rings_math.binomial_pmf(7, 8, 0.3) == 0.0
        assert rings_math.binomial_pmf(7, -1, 0.3) == 0.0


class TestOpponentSuccessors:
    def test_at_least_plus_at_most_cover(self):
        upper = rings_math.opponent_successors_at_least(7, 0.1, 3)
        lower = rings_math.opponent_successors_at_most(7, 0.1, 2)
        assert upper.value + lower.value == pytest.approx(1.0)

    def test_paper_claim_majority_6e6(self):
        p = rings_math.majority_opponent_successors(7, 0.05)
        assert p.value == pytest.approx(5.9e-6, rel=0.05)

    def test_paper_claim_at_most_3_of_7(self):
        p = rings_math.opponent_successors_at_most(7, 0.10, 3)
        assert p.value == pytest.approx(0.9973, abs=0.0005)

    def test_supermajority_threshold(self):
        assert rings_math.supermajority_threshold(7) == 5
        assert rings_math.supermajority_threshold(8) == 6

    def test_explicit_threshold_override(self):
        default = rings_math.majority_opponent_successors(7, 0.05)
        strict = rings_math.majority_opponent_successors(7, 0.05, threshold=7)
        assert strict < default

    def test_more_rings_reduce_majority_risk(self):
        risky = rings_math.majority_opponent_successors(3, 0.1)
        safer = rings_math.majority_opponent_successors(9, 0.1)
        assert safer < risky

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            rings_math.opponent_successors_at_least(0, 0.1, 1)
        with pytest.raises(ValueError):
            rings_math.opponent_successors_at_most(7, 1.5, 1)


class TestRingSizing:
    def test_correct_successors_needed_grows_with_n(self):
        assert rings_math.correct_successors_needed(100_000) > rings_math.correct_successors_needed(100)

    def test_footnote5_form(self):
        # log(1000) ~ 6.9 -> 7 + c
        assert rings_math.correct_successors_needed(1000, c=2) == 9

    def test_rings_for_reliability_meets_target(self):
        R = rings_math.rings_for_reliability(1000, f=0.1, c=0, confidence=0.999)
        needed = rings_math.correct_successors_needed(1000, c=0)
        p_ok = sum(
            rings_math.binomial_pmf(R, j, 0.9) for j in range(needed, R + 1)
        )
        assert p_ok >= 0.999

    def test_more_opponents_need_more_rings(self):
        low = rings_math.rings_for_reliability(1000, f=0.05)
        high = rings_math.rings_for_reliability(1000, f=0.3)
        assert high > low

    def test_tiny_system_rejected(self):
        with pytest.raises(ValueError):
            rings_math.correct_successors_needed(1)


class TestHypergeometric:
    def test_matches_binomial_for_large_group(self):
        hyper = rings_math.hypergeometric_at_most(10_000, 1000, 7, 3)
        binom = rings_math.opponent_successors_at_most(7, 0.1, 3)
        assert hyper.value == pytest.approx(binom.value, rel=0.01)

    def test_exhaustive_draw(self):
        # Drawing the whole group: opponent count is exact.
        p = rings_math.hypergeometric_at_most(10, 4, 10, 4)
        assert p.value == pytest.approx(1.0)
        p2 = rings_math.hypergeometric_at_most(10, 4, 10, 3)
        assert p2.value == pytest.approx(0.0)

    def test_overdraw_rejected(self):
        with pytest.raises(ValueError):
            rings_math.hypergeometric_at_most(5, 2, 6, 1)
