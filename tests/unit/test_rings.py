"""Unit tests for the multi-ring topology."""

import pytest

from repro.overlay.rings import RingTopology


class TestMembership:
    def test_starts_with_given_members(self):
        topo = RingTopology([1, 2, 3], num_rings=3)
        assert topo.members == {1, 2, 3}
        assert len(topo) == 3

    def test_add_and_remove(self):
        topo = RingTopology([1], num_rings=2)
        topo.add_node(2)
        assert 2 in topo
        topo.remove_node(2)
        assert 2 not in topo

    def test_double_add_rejected(self):
        topo = RingTopology([1], num_rings=2)
        with pytest.raises(ValueError):
            topo.add_node(1)

    def test_remove_unknown_rejected(self):
        topo = RingTopology([1], num_rings=2)
        with pytest.raises(ValueError):
            topo.remove_node(9)

    def test_zero_rings_rejected(self):
        with pytest.raises(ValueError):
            RingTopology([], num_rings=0)


class TestNeighbours:
    def test_successor_and_predecessor_are_inverse(self):
        topo = RingTopology(range(10), num_rings=4)
        for node in range(10):
            for ring in range(4):
                succ = topo.successor(node, ring)
                assert topo.predecessor(succ, ring) == node

    def test_singleton_has_no_neighbours(self):
        topo = RingTopology([7], num_rings=3)
        assert topo.successor(7, 0) is None
        assert topo.predecessor(7, 0) is None

    def test_pair_are_mutual_neighbours(self):
        topo = RingTopology([1, 2], num_rings=1)
        assert topo.successor(1, 0) == 2
        assert topo.successor(2, 0) == 1

    def test_ring_walk_visits_every_member_once(self):
        members = list(range(20))
        topo = RingTopology(members, num_rings=2)
        for ring in range(2):
            seen = [0]
            while True:
                nxt = topo.successor(seen[-1], ring)
                if nxt == 0:
                    break
                seen.append(nxt)
            assert sorted(seen) == members

    def test_rings_are_differently_ordered(self):
        # With 32 members and 128-bit hash positions, two identically
        # ordered rings are (astronomically) unlikely.
        topo = RingTopology(range(32), num_rings=2)
        assert topo.ring_order(0) != topo.ring_order(1)

    def test_unknown_node_query_rejected(self):
        topo = RingTopology([1, 2], num_rings=1)
        with pytest.raises(ValueError):
            topo.successor(9, 0)

    def test_out_of_range_ring_rejected(self):
        topo = RingTopology([1, 2], num_rings=1)
        with pytest.raises(ValueError):
            topo.successor(1, 1)
        with pytest.raises(ValueError):
            topo.ring_order(5)


class TestNeighbourSets:
    def test_successors_has_one_entry_per_ring(self):
        topo = RingTopology(range(10), num_rings=5)
        assert len(topo.successors(3)) == 5

    def test_successor_set_deduplicates(self):
        topo = RingTopology([1, 2], num_rings=4)
        assert topo.successors(1) == [2, 2, 2, 2]
        assert topo.successor_set(1) == {2}

    def test_determinism_across_instances(self):
        a = RingTopology(range(50), num_rings=3)
        b = RingTopology(reversed(range(50)), num_rings=3)
        for node in range(50):
            assert a.successors(node) == b.successors(node)

    def test_removal_relinks_the_ring(self):
        topo = RingTopology(range(5), num_rings=1)
        victim = topo.successor(0, 0)
        after_victim = topo.successor(victim, 0)
        topo.remove_node(victim)
        assert topo.successor(0, 0) == after_victim
