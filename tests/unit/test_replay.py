"""Unit tests for membership-event replay."""

import pytest

from repro.crypto.keys import KeyPair
from repro.overlay.replay import ReplayableView, ViewEvent, converged


class TestViewEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ViewEvent("promote", 1, 0)
        with pytest.raises(ValueError):
            ViewEvent("add", 1, -1)

    def test_dedup_token(self):
        assert ViewEvent("add", 1, 0).dedup_token() == ("add", 1, 0)


class TestReplay:
    def test_add_then_remove(self):
        replica = ReplayableView(2)
        assert replica.apply(ViewEvent("add", 5, 0))
        assert 5 in replica.view
        assert replica.apply(ViewEvent("remove", 5, 1))
        assert 5 not in replica.view

    def test_duplicate_event_is_noop(self):
        replica = ReplayableView(2)
        event = ViewEvent("add", 5, 0)
        assert replica.apply(event)
        assert not replica.apply(event)
        assert len(replica.view) == 1

    def test_stale_event_dropped(self):
        replica = ReplayableView(2)
        replica.apply(ViewEvent("add", 5, 0))
        replica.apply(ViewEvent("remove", 5, 3))
        # A late-arriving older add must not resurrect the node.
        assert not replica.apply(ViewEvent("add", 5, 1))
        assert 5 not in replica.view

    def test_remove_of_unknown_is_noop(self):
        replica = ReplayableView(2)
        assert not replica.apply(ViewEvent("remove", 9, 0))

    def test_key_carried_by_add(self):
        key = KeyPair.generate("sim", seed=1).public
        replica = ReplayableView(2)
        replica.apply(ViewEvent("add", 5, 0, id_key=key))
        assert replica.view.id_key(5) is key

    def test_apply_all_counts_changes(self):
        replica = ReplayableView(2)
        events = [ViewEvent("add", 1, 0), ViewEvent("add", 1, 0), ViewEvent("add", 2, 0)]
        assert replica.apply_all(events) == 2


class TestDigest:
    def test_digest_order_insensitive(self):
        a = ReplayableView(2)
        b = ReplayableView(2)
        a.apply_all([ViewEvent("add", 1, 0), ViewEvent("add", 2, 0)])
        b.apply_all([ViewEvent("add", 2, 0), ViewEvent("add", 1, 0)])
        assert a.state_digest() == b.state_digest()

    def test_digest_sensitive_to_membership(self):
        a = ReplayableView(2)
        b = ReplayableView(2)
        a.apply(ViewEvent("add", 1, 0))
        b.apply(ViewEvent("add", 2, 0))
        assert a.state_digest() != b.state_digest()

    def test_converged_on_empty_set(self):
        assert converged([])

    def test_converged_detects_divergence(self):
        a = ReplayableView(2)
        b = ReplayableView(2)
        a.apply(ViewEvent("add", 1, 0))
        assert not converged([a, b])
