"""Unit tests for the Section V-A anonymity formulas.

The numeric anchors are the paper's own: Table I cells and the in-text
values (see also tests/unit/test_text_claims.py for the scoreboard).
"""

import pytest

from repro.analysis import anonymity
from repro.analysis.probability import ZERO

N, G, L = 100_000, 1000, 5


def log10(p):
    return p.log10


class TestPathAllOpponents:
    def test_too_few_opponents_is_zero(self):
        assert anonymity.path_all_opponents(X=L, G=G, L=L) is ZERO  # needs L+1

    def test_all_opponents_is_certainty(self):
        p = anonymity.path_all_opponents(X=G, G=G, L=2)
        assert p.value == pytest.approx(1.0)

    def test_monotone_in_x(self):
        p1 = anonymity.path_all_opponents(10, G, L)
        p2 = anonymity.path_all_opponents(100, G, L)
        assert p1 < p2

    def test_group_too_small_rejected(self):
        with pytest.raises(ValueError):
            anonymity.path_all_opponents(3, G=4, L=5)


class TestOpponentsInGroup:
    def test_more_than_available_is_zero(self):
        assert anonymity.opponents_in_group(11, N=100, f=0.1) is ZERO

    def test_zero_draws_is_one(self):
        assert anonymity.opponents_in_group(0, N, 0.1).value == pytest.approx(1.0)

    def test_approximates_f_power_x(self):
        p = anonymity.opponents_in_group(3, N, 0.1)
        assert p.value == pytest.approx(0.001, rel=0.01)


class TestSenderAnonymity:
    def test_nogroup_matches_paper_9_9e7(self):
        p = anonymity.sender_break_nogroup(N, 0.10, L)
        assert p.value == pytest.approx(9.9e-7, rel=0.02)

    def test_nogroup_f50_matches_1_5e2(self):
        p = anonymity.sender_break_nogroup(N, 0.50, L)
        assert p.value == pytest.approx(1.5e-2, rel=0.05)

    def test_nogroup_f90_matches_0_53(self):
        p = anonymity.sender_break_nogroup(N, 0.90, L)
        assert p.value == pytest.approx(0.53, rel=0.01)

    def test_grouped_f10_matches_7_3e22(self):
        p = anonymity.sender_break_grouped(N, G, 0.10, L)
        assert log10(p) == pytest.approx(-21.14, abs=0.05)  # 7.3e-22

    def test_grouped_f50_matches_1_8e16(self):
        p = anonymity.sender_break_grouped(N, G, 0.50, L)
        assert log10(p) == pytest.approx(-15.75, abs=0.15)  # ~1.8e-16

    def test_grouped_f90_matches_7_1e11(self):
        p = anonymity.sender_break_grouped(N, G, 0.90, L)
        assert log10(p) == pytest.approx(-10.15, abs=0.15)  # ~7.1e-11

    def test_quoted_variant_matches_5_7e25(self):
        p = anonymity.sender_break_grouped(N, G, 0.05, L, variant="quoted")
        assert log10(p) == pytest.approx(-24.24, abs=0.05)

    def test_grouped_beats_nogroup(self):
        # The paper's counter-intuitive observation: groups *improve*
        # sender anonymity because opponents cannot pick their group.
        for f in (0.1, 0.5, 0.9):
            assert anonymity.sender_break_grouped(N, G, f, L) < anonymity.sender_break_nogroup(
                N, f, L
            )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            anonymity.sender_break_grouped(N, G, 0.1, L, variant="fancy")

    def test_zero_opponents_zero_probability(self):
        assert anonymity.sender_break_grouped(N, G, 0.0, L) is ZERO
        assert anonymity.sender_break_nogroup(N, 0.0, L) is ZERO


class TestReceiverAnonymity:
    @pytest.mark.parametrize(
        "f,expected_log10",
        [(0.10, -1019.24), (0.50, -302.92), (0.90, -45.96)],
    )
    def test_grouped_matches_table1(self, f, expected_log10):
        p = anonymity.receiver_break_grouped(N, G, f)
        assert log10(p) == pytest.approx(expected_log10, abs=0.3)

    def test_nogroup_is_zero_below_full_control(self):
        assert anonymity.receiver_break_nogroup(N, 0.9) is ZERO

    def test_nogroup_with_total_control(self):
        assert anonymity.receiver_break_nogroup(N, 1.0).value == 1.0

    def test_unlinkability_equals_receiver(self):
        assert anonymity.unlinkability_break_grouped(N, G, 0.1) == anonymity.receiver_break_grouped(
            N, G, 0.1
        )


class TestBaselinesAndActive:
    def test_dissent_zero_below_total_control(self):
        assert anonymity.dissent_break(0.99) is ZERO
        assert anonymity.dissent_break(1.0).value == 1.0

    def test_onion_matches_nogroup_sender(self):
        assert anonymity.onion_routing_break(N, 0.1, L) == anonymity.sender_break_nogroup(
            N, 0.1, L
        )

    def test_active_is_fg_times_passive(self):
        passive = anonymity.sender_break_grouped(N, G, 0.05, L, variant="quoted")
        active = anonymity.active_sender_break_grouped(N, G, 0.05, L, variant="quoted")
        assert active.log10 == pytest.approx(passive.log10 + 1.7, abs=0.01)  # x50

    def test_active_matches_paper_2_8e23(self):
        active = anonymity.active_sender_break_grouped(N, G, 0.05, L, variant="quoted")
        assert log10(active) == pytest.approx(-22.54, abs=0.05)


class TestAnonymitySetSize:
    def test_grouped_is_group_size(self):
        assert anonymity.anonymity_set_size(N, G) == 1000

    def test_ungrouped_is_system_size(self):
        assert anonymity.anonymity_set_size(N, None) == N

    def test_small_system_caps_group(self):
        assert anonymity.anonymity_set_size(500, 1000) == 500
