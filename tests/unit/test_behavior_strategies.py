"""Unit tests for the behaviour hooks and freerider strategies."""

import pytest

from repro.core.behavior import HonestBehavior
from repro.freeride.adversary import FalseAccuser, Flooder, PathDropOpponent, ReplayAttacker
from repro.freeride.strategies import (
    ForwardDropper,
    FullFreerider,
    LyingShuffler,
    NoChecks,
    NoNoise,
    SilentRelay,
)


class _FakeNode:
    """Just enough node for the behaviour hooks."""

    class _Blacklist:
        @staticmethod
        def members():
            return (7, 9)

    relays_blacklist = _Blacklist()


class TestHonestBehavior:
    def test_all_hooks_comply(self):
        behavior = HonestBehavior()
        node = _FakeNode()
        assert behavior.should_forward_broadcast(node, ("group", 1), 1, 0)
        assert behavior.should_relay_onion(node, None)
        assert behavior.should_send_noise(node)
        assert behavior.should_run_checks(node)
        assert behavior.should_help_join(node)
        assert behavior.replay_copies(node) == 1
        assert behavior.blacklist_share(node) == (7, 9)
        assert behavior.on_tick(node) is None


class TestStrategies:
    def test_forward_dropper_probability(self):
        dropper = ForwardDropper(0.5, seed=1)
        node = _FakeNode()
        outcomes = [
            dropper.should_forward_broadcast(node, ("group", 1), i, 0) for i in range(200)
        ]
        dropped = outcomes.count(False)
        assert 60 < dropped < 140  # ~50%
        assert dropper.drops == dropped

    def test_forward_dropper_validation(self):
        with pytest.raises(ValueError):
            ForwardDropper(1.5)

    def test_silent_relay_counts_refusals(self):
        silent = SilentRelay()
        node = _FakeNode()
        assert not silent.should_relay_onion(node, None)
        assert not silent.should_relay_onion(node, None)
        assert silent.refused == 2

    def test_no_noise_still_forwards(self):
        lazy = NoNoise()
        node = _FakeNode()
        assert not lazy.should_send_noise(node)
        assert lazy.should_forward_broadcast(node, ("group", 1), 1, 0)

    def test_no_checks_still_relays(self):
        behavior = NoChecks()
        node = _FakeNode()
        assert not behavior.should_run_checks(node)
        assert behavior.should_relay_onion(node, None)

    def test_lying_shuffler_sends_empty(self):
        assert LyingShuffler().blacklist_share(_FakeNode()) == ()

    def test_full_freerider_composes_everything(self):
        freerider = FullFreerider()
        node = _FakeNode()
        assert not freerider.should_forward_broadcast(node, ("group", 1), 1, 0)
        assert not freerider.should_relay_onion(node, None)
        assert not freerider.should_send_noise(node)
        assert not freerider.should_run_checks(node)
        assert freerider.blacklist_share(node) == ()


class TestAdversaries:
    def test_replay_attacker_copies(self):
        assert ReplayAttacker(3).replay_copies(_FakeNode()) == 3

    def test_replay_attacker_validation(self):
        with pytest.raises(ValueError):
            ReplayAttacker(1)

    def test_flooder_validation(self):
        with pytest.raises(ValueError):
            Flooder(0)

    def test_path_drop_counts(self):
        opponent = PathDropOpponent()
        opponent.should_relay_onion(_FakeNode(), None)
        assert opponent.dropped == 1

    def test_false_accuser_tracks_victim(self):
        accuser = FalseAccuser(victim=123, reason="replay")
        assert accuser.victim == 123
        assert accuser.reason == "replay"
        assert accuser.accusations_sent == 0

    def test_names_are_distinct(self):
        names = {
            cls().name if cls not in (ForwardDropper, FalseAccuser, ReplayAttacker, Flooder)
            else None
            for cls in (SilentRelay, NoNoise, NoChecks, LyingShuffler, FullFreerider, PathDropOpponent)
        }
        names.discard(None)
        assert len(names) == 6
