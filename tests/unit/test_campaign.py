"""Campaign spec expansion and frontier math, on synthetic records.

Everything here is simulation-free: the spec's validation and grid
round-trip, and the frontier aggregator fed hand-built result records,
so the soundness taxonomy (missed-detection vs false-positive), the
onset arithmetic and the skip accounting are pinned without paying for
a single protocol run.
"""

import dataclasses

import pytest

from repro.campaign import (
    CAMPAIGN_EXPERIMENT,
    CampaignSpec,
    build_frontier,
)
from repro.campaign.scoring import build_campaign_plan
from repro.freeride.registry import UnknownBehaviorError
from repro.orchestrator import ResultRecord, ResultStore, config_hash


def _record(strategy, plan, loss, seed=0, status="ok", experiment=CAMPAIGN_EXPERIMENT,
            **metric_overrides):
    params = {"strategy": strategy, "plan": plan, "loss": loss, "nodes": 10}
    metrics = {
        "honest_evictions": 0.0,
        "missed_detections": 0.0,
        "detected": 1.0,
        "detection_time_s": 5.0,
        "anonymity_entropy_bits": 3.0,
        "attribution_accuracy": 0.1,
    }
    metrics.update(metric_overrides)
    return ResultRecord(
        cell_id=f"{strategy}-{plan}-{loss}-{seed}",
        experiment=experiment,
        config_hash=config_hash(params),
        params=params,
        seed=seed,
        metrics=metrics,
        status=status,
    )


class TestCampaignSpec:
    def test_defaults_validate_and_expand(self):
        spec = CampaignSpec()
        grid = spec.to_grid()
        assert len(grid) == len(spec)
        cells = grid.cells()
        assert all(c.experiment == CAMPAIGN_EXPERIMENT for c in cells)
        params = cells[0].params_dict
        assert {"strategy", "plan", "loss", "nodes", "horizon",
                "detection_bound", "heal_bound"} <= set(params)

    def test_detection_bound_defaults_to_horizon(self):
        spec = CampaignSpec(horizon=9.0)
        assert all(
            c.params_dict["detection_bound"] == 9.0 for c in spec.to_grid().cells()
        )

    def test_unknown_strategy_is_typed(self):
        with pytest.raises(UnknownBehaviorError, match="sleepy"):
            CampaignSpec(strategies=("sleepy-relay",))

    @pytest.mark.parametrize(
        "overrides",
        [
            {"plans": ("tsunami",)},
            {"loss_points": (1.5,)},
            {"loss_points": (-0.1,)},
            {"group_sizes": (4,)},
            {"seeds": ()},
            {"horizon": 0.0},
            {"detection_bound": 99.0},
            {"heal_bound": -1.0},
        ],
    )
    def test_bad_axes_rejected(self, overrides):
        with pytest.raises(ValueError):
            dataclasses.replace(CampaignSpec(), **overrides)

    def test_dict_round_trip(self):
        spec = CampaignSpec.full(seeds=(0, 1))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_cell_count_arithmetic(self):
        spec = CampaignSpec.full(seeds=(0, 1))
        assert len(spec) == 8 * 2 * 3 * 1 * 2
        assert "48 cells" not in spec.describe() or len(spec) == 48

    def test_grid_is_content_addressed_and_stable(self):
        a = {c.cell_id for c in CampaignSpec.smoke().to_grid().cells()}
        b = {c.cell_id for c in CampaignSpec.smoke().to_grid().cells()}
        assert a == b

    def test_plan_builder_names(self):
        for name in ("none", "smoke", "storm"):
            plan = build_campaign_plan(name, nodes=10, horizon=12.0, seed=0)
            plan.validate(10)
        with pytest.raises(ValueError, match="tsunami"):
            build_campaign_plan("tsunami", nodes=10, horizon=12.0, seed=0)


class TestFrontier:
    def test_sound_matrix(self):
        store = ResultStore()
        for loss in (0.0, 0.05):
            store.append(_record("forward-dropper", "none", loss))
            store.append(_record("forward-dropper", "smoke", loss))
        report = build_frontier(store)
        assert report.baseline_ok
        assert report.skipped == 0
        for f in report.frontiers:
            assert f.sound_up_to == 0.05
            assert f.degrade_onset is None
            assert f.false_positive_onset is None
            assert f.requires_detection
        assert "SOUND" in report.render()

    def test_missed_detection_onset(self):
        store = ResultStore()
        store.append(_record("silent-relay", "none", 0.0))
        store.append(
            _record("silent-relay", "none", 0.10,
                    missed_detections=1.0, detected=0.0, detection_time_s=-1.0)
        )
        report = build_frontier(store)
        (f,) = report.frontiers
        assert report.baseline_ok  # baseline (lowest loss) is clean
        assert f.sound_up_to == 0.0
        assert f.degrade_onset == 0.10
        assert f.false_positive_onset is None
        assert "detection first degrades at 10%" in f.describe()

    def test_false_positive_onset_breaks_baseline(self):
        store = ResultStore()
        store.append(_record("flooder", "none", 0.0, honest_evictions=2.0))
        report = build_frontier(store)
        assert not report.baseline_ok
        (f,) = report.frontiers
        assert f.sound_up_to is None
        assert f.false_positive_onset == 0.0
        assert "false positives from 0%" in f.describe()
        assert "UNSOUND" in report.render()

    def test_undetectable_strategy_needs_no_conviction(self):
        store = ResultStore()
        store.append(
            _record("no-noise", "none", 0.0, detected=0.0, detection_time_s=-1.0)
        )
        report = build_frontier(store)
        (f,) = report.frontiers
        assert not f.requires_detection
        assert report.baseline_ok
        assert "no conviction required" in f.describe()

    def test_entropy_trend_spans_the_loss_axis(self):
        store = ResultStore()
        store.append(_record("forward-dropper", "none", 0.0, anonymity_entropy_bits=3.3))
        store.append(_record("forward-dropper", "none", 0.10, anonymity_entropy_bits=2.8))
        (f,) = build_frontier(store).frontiers
        assert f.entropy_baseline == pytest.approx(3.3)
        assert f.entropy_worst == pytest.approx(2.8)

    def test_foreign_and_failed_and_partial_records_are_counted_not_fatal(self):
        store = ResultStore()
        store.append(_record("forward-dropper", "none", 0.0))
        store.append(_record("forward-dropper", "none", 0.05, seed=1, status="failed"))
        store.append(_record("x", "none", 0.0, seed=2, experiment="protocol"))
        partial = _record("forward-dropper", "none", 0.05, seed=3)
        partial.metrics = {"deliveries": 9.0}  # e.g. written by older code
        store.append(partial)
        report = build_frontier(store)
        assert report.failed_cells == 1
        assert report.foreign_records == 1
        assert report.skipped == 1
        assert sum(p.cells for p in report.points) == 1
        assert "skipped" in report.render()

    def test_empty_store_is_unsound(self):
        report = build_frontier(ResultStore())
        assert not report.baseline_ok
        assert "UNSOUND" in report.render()

    def test_seeds_fold_into_one_point(self):
        store = ResultStore()
        for seed in (0, 1, 2):
            store.append(_record("forward-dropper", "none", 0.0, seed=seed,
                                 detection_time_s=float(seed + 4)))
        report = build_frontier(store)
        (point,) = report.points
        assert point.cells == 3
        assert point.detection_required == 3
        assert point.mean_detection_time == pytest.approx(5.0)


class TestPollutionThreshold:
    def test_flooder_pollution_unsound_at_strict_threshold(self):
        # The flooder's documented residue: honest-but-blacklisted
        # entries linger at the horizon without a single false
        # eviction. At threshold 0 that residue must flip the verdict.
        store = ResultStore()
        store.append(_record("flooder", "none", 0.0, blacklist_violations=8.0))
        report = build_frontier(store, pollution_threshold=0.0)
        (point,) = report.points
        assert point.mean_pollution == pytest.approx(8.0)
        assert point.polluted and not point.sound
        assert not report.baseline_ok
        (f,) = report.frontiers
        assert f.pollution_onset == 0.0
        assert "blacklist pollution over threshold" in f.describe()
        assert "8.0!" in report.render()

    def test_flooder_pollution_tolerated_at_default_threshold(self):
        # The default threshold is calibrated to tolerate the measured
        # flooder level (≈8 per cell) with 2x headroom, so the
        # committed matrix stays SOUND while anything materially worse
        # trips the verdict.
        store = ResultStore()
        store.append(_record("flooder", "none", 0.0, blacklist_violations=8.0))
        report = build_frontier(store)
        (point,) = report.points
        assert not point.polluted and point.sound
        assert report.baseline_ok
        assert report.frontiers[0].pollution_onset is None
        assert "pollution threshold: 16" in report.render()

    def test_pollution_onset_walks_the_loss_axis(self):
        store = ResultStore()
        store.append(_record("flooder", "none", 0.0, blacklist_violations=3.0))
        store.append(_record("flooder", "none", 0.10, blacklist_violations=25.0))
        (f,) = build_frontier(store).frontiers
        assert f.sound_up_to == 0.0
        assert f.pollution_onset == 0.10


def _coalition_record(strategy, plan, fraction, seed=0, *, size, nodes=12,
                      threshold=4, **metric_overrides):
    record = _record(strategy, plan, 0.0, seed=seed, **metric_overrides)
    record.cell_id = f"{strategy}-{plan}-{fraction}-{seed}"
    record.params["nodes"] = nodes
    record.params["coalition_fraction"] = fraction
    record.metrics.setdefault("coalition_size", float(size))
    record.metrics.setdefault("coalition_evicted", float(size))
    record.metrics.setdefault("relay_threshold", float(threshold))
    record.metrics.setdefault("shuffle_rounds", 12.0)
    return record


class TestCoalitionFrontier:
    def test_coalition_cells_fold_apart_from_classic_points(self):
        store = ResultStore()
        store.append(_record("silent-relay", "none", 0.0))
        store.append(_coalition_record("coalition-shield", "none", 0.25, size=3))
        report = build_frontier(store)
        assert len(report.points) == 1  # the classic cell only
        assert report.coalition is not None
        (point,) = report.coalition.points
        assert point.fraction == 0.25
        assert point.size == 3 and point.nodes == 12
        assert point.bound_fraction == pytest.approx(0.25)
        assert not point.above_bound  # 3 == threshold - 1 == f*G

    def test_sub_bound_gate_passes_on_clean_sub_bound_cells(self):
        store = ResultStore()
        for plan in ("none", "storm"):
            store.append(_coalition_record("coalition-shield", plan, 0.25, size=3))
        report = build_frontier(store)
        assert report.coalition.sub_bound_sound
        assert report.baseline_ok  # pure-coalition store gates on sub-f*G
        (f,) = [f for f in report.coalition.frontiers if f.plan == "none"]
        assert f.holds and f.measured_onset is None
        assert "sound across the whole swept range" in f.describe()

    def test_frame_breakdown_lands_above_bound(self):
        # The acceptance-criteria shape: sub-bound frame cells clean,
        # the quorum-completing fraction evicts an honest victim, and
        # the frontier reports the onset without failing the gate.
        store = ResultStore()
        store.append(_coalition_record(
            "coalition-frame", "none", 0.25, size=3,
            detected=0.0, detection_time_s=-1.0))
        store.append(_coalition_record(
            "coalition-frame", "none", 4 / 12, size=4,
            detected=0.0, detection_time_s=-1.0, honest_evictions=1.0))
        report = build_frontier(store)
        coalition = report.coalition
        assert coalition.sub_bound_sound  # the breakdown is above-bound
        (f,) = coalition.frontiers
        assert f.fp_onset == pytest.approx(4 / 12)
        assert f.measured_onset == pytest.approx(4 / 12)
        assert f.predicted_onset == pytest.approx(4 / 12)
        assert f.holds
        assert "honest evictions from 33.3%" in f.describe()
        (broken,) = coalition.breakdowns
        assert broken.fraction == pytest.approx(4 / 12)
        assert "above-bound breakdowns" in coalition.render()
        assert "UNSOUND (>f*G)" in coalition.render()

    def test_sub_bound_honest_eviction_violates_the_bound(self):
        store = ResultStore()
        store.append(_coalition_record(
            "coalition-frame", "none", 0.25, size=3, honest_evictions=1.0,
            detected=0.0, detection_time_s=-1.0))
        report = build_frontier(store)
        assert not report.coalition.sub_bound_sound
        assert not report.baseline_ok
        (f,) = report.coalition.frontiers
        assert not f.holds
        assert "BOUND VIOLATED" in f.describe()

    def test_sub_bound_storm_miss_is_latency_not_violation(self):
        # A rotating coalition under a fault storm may outlive the
        # finite detection bound below f*G: reported as LATE, gate
        # still passes (safety held; conviction was slow, not absent).
        store = ResultStore()
        store.append(_coalition_record(
            "coalition-stagger", "none", 0.25, size=3))
        store.append(_coalition_record(
            "coalition-stagger", "storm", 0.25, size=3,
            missed_detections=1.0, detected=0.0, detection_time_s=-1.0,
            coalition_evicted=2.0))
        report = build_frontier(store)
        coalition = report.coalition
        assert coalition.sub_bound_sound
        by_plan = {f.plan: f for f in coalition.frontiers}
        assert by_plan["none"].holds
        assert by_plan["storm"].holds  # storm miss below bound: latency
        assert by_plan["storm"].miss_onset == pytest.approx(0.25)
        assert "LATE" in coalition.render()

    def test_sub_bound_clean_plan_miss_violates_the_bound(self):
        store = ResultStore()
        store.append(_coalition_record(
            "coalition-stagger", "none", 0.25, size=3,
            missed_detections=1.0, detected=0.0, detection_time_s=-1.0,
            coalition_evicted=2.0))
        report = build_frontier(store)
        assert not report.coalition.sub_bound_sound
        (f,) = report.coalition.frontiers
        assert not f.holds


class TestTopologyAxis:
    def test_unknown_topology_rejected_with_the_valid_names(self):
        with pytest.raises(ValueError, match="wan-king"):
            CampaignSpec(topologies=("metroplex",))
        with pytest.raises(ValueError):
            CampaignSpec(topologies=())

    def test_topology_axis_multiplies_the_grid(self):
        base = CampaignSpec.smoke()
        spec = dataclasses.replace(base, topologies=("lan", "wan-king"))
        assert len(spec) == 2 * len(base)
        cells = spec.to_grid().cells()
        assert {c.params_dict["topology"] for c in cells} == {"lan", "wan-king"}

    def test_dict_round_trip_keeps_topologies(self):
        spec = dataclasses.replace(CampaignSpec.smoke(), topologies=("lan", "hetero-access"))
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_frontier_folds_per_topology(self):
        store = ResultStore()
        clean = _record("forward-dropper", "none", 0.0)
        wan = _record("forward-dropper", "none", 0.0, seed=1, honest_evictions=1.0)
        wan.params["topology"] = "wan-king"
        store.append(clean)
        store.append(wan)
        report = build_frontier(store)
        assert len(report.frontiers) == 2
        by_topo = {f.topology: f for f in report.frontiers}
        assert by_topo["lan"].false_positive_onset is None
        assert by_topo["wan-king"].false_positive_onset == 0.0
        assert "on wan-king" in by_topo["wan-king"].describe()
        assert "topology" in report.render()
