"""Unit tests for the group-assignment puzzle."""

import random

import pytest

from repro.groups.assignment import expected_attempts, solve_puzzle, verify_puzzle


class TestSolve:
    def test_solution_verifies(self):
        solution = solve_puzzle(key_id=12345, mk=6, rng=random.Random(1))
        assert verify_puzzle(solution.key_id, solution.vector, solution.node_id, mk=6)

    def test_vector_differs_from_key(self):
        solution = solve_puzzle(key_id=12345, mk=4, rng=random.Random(2))
        assert solution.vector != solution.key_id

    def test_deterministic_with_seeded_rng(self):
        a = solve_puzzle(1, mk=6, rng=random.Random(3))
        b = solve_puzzle(1, mk=6, rng=random.Random(3))
        assert a.vector == b.vector and a.node_id == b.node_id

    def test_zero_difficulty_solves_immediately(self):
        solution = solve_puzzle(1, mk=0, rng=random.Random(4))
        assert solution.attempts == 1

    def test_negative_difficulty_rejected(self):
        with pytest.raises(ValueError):
            solve_puzzle(1, mk=-1)

    def test_attempts_scale_with_difficulty(self):
        rng = random.Random(5)
        # Average over a few solves: mk=8 needs ~256 attempts, mk=2 ~4.
        hard = sum(solve_puzzle(k, mk=8, rng=rng).attempts for k in range(8)) / 8
        easy = sum(solve_puzzle(k, mk=2, rng=rng).attempts for k in range(8)) / 8
        assert hard > easy * 4

    def test_expected_attempts(self):
        assert expected_attempts(10) == 1024


class TestVerify:
    def test_rejects_wrong_node_id(self):
        solution = solve_puzzle(77, mk=4, rng=random.Random(6))
        assert not verify_puzzle(77, solution.vector, solution.node_id + 1, mk=4)

    def test_rejects_wrong_vector(self):
        solution = solve_puzzle(77, mk=8, rng=random.Random(7))
        assert not verify_puzzle(77, solution.vector + 1, solution.node_id, mk=8)

    def test_rejects_vector_equal_to_key(self):
        # y == K is forbidden even though f(K) trivially matches f(K).
        from repro.crypto.hashes import oneway_g

        assert not verify_puzzle(77, 77, oneway_g(77, 77), mk=4)

    def test_node_cannot_choose_its_id(self):
        # The whole point: solving for a *specific* target id fails;
        # across many solves the ids spread over the 128-bit space.
        ids = {solve_puzzle(k, mk=2, rng=random.Random(k)).node_id for k in range(20)}
        assert len(ids) == 20
        spread = max(ids) - min(ids)
        assert spread > (1 << 120)  # far-apart ids, not clustered
