"""Unit tests for channel (super-group) views."""

import random

import pytest

from repro.groups.channels import ChannelDirectory, channel_key
from repro.groups.manager import GroupDirectory


def build_directory(count=12, smax=6, seed=0):
    directory = GroupDirectory(num_rings=3, smin=2, smax=smax)
    rng = random.Random(seed)
    nodes = []
    while len(nodes) < count:
        node_id = rng.getrandbits(128)
        if node_id not in nodes:
            directory.add_node(node_id)
            nodes.append(node_id)
    return directory, nodes


class TestChannelKey:
    def test_order_free(self):
        assert channel_key(3, 7) == channel_key(7, 3) == (3, 7)

    def test_same_group_rejected(self):
        with pytest.raises(ValueError):
            channel_key(3, 3)


class TestChannelDirectory:
    def test_channel_is_union_of_both_groups(self):
        directory, _ = build_directory()
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)
        assert len(gids) >= 2
        view = channels.channel_view(gids[0], gids[1])
        expected = directory.groups[gids[0]].members | directory.groups[gids[1]].members
        assert view.members == expected

    def test_channel_carries_id_keys(self):
        from repro.crypto.keys import KeyPair

        directory = GroupDirectory(num_rings=2, smin=2, smax=4)
        rng = random.Random(1)
        for i in range(6):
            directory.add_node(rng.getrandbits(128), KeyPair.generate("sim", seed=i).public)
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)
        view = channels.channel_view(gids[0], gids[1])
        assert all(view.id_key(n) is not None for n in view.members)

    def test_cache_reuses_unchanged_views(self):
        directory, _ = build_directory()
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)
        first = channels.channel_view(gids[0], gids[1])
        second = channels.channel_view(gids[1], gids[0])
        assert first is second

    def test_cache_invalidated_by_membership_change(self):
        directory, nodes = build_directory()
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)
        before = channels.channel_view(gids[0], gids[1])
        victim = next(iter(directory.groups[gids[0]].members))
        directory.remove_node(victim)
        after = channels.channel_view(gids[0], gids[1])
        assert after is not before
        assert victim not in after.members

    def test_explicit_invalidate(self):
        directory, _ = build_directory()
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)
        before = channels.channel_view(gids[0], gids[1])
        channels.invalidate()
        after = channels.channel_view(gids[0], gids[1])
        assert after is not before
        assert after.members == before.members

    def test_channel_rings_span_both_groups(self):
        directory, _ = build_directory(count=16, smax=8, seed=3)
        channels = ChannelDirectory(directory)
        gids = list(directory.groups)[:2]
        view = channels.channel_view(gids[0], gids[1])
        some_member = next(iter(directory.groups[gids[0]].members))
        # Walking ring 0 from a member of group A must reach group B.
        reached = {some_member}
        cursor = some_member
        for _ in range(len(view)):
            cursor = view.topology.successor(cursor, 0)
            reached.add(cursor)
        assert reached & directory.groups[gids[1]].members
