"""Unit tests for the discrete-event engine."""

import pytest

from repro.simnet.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        seen = []
        sim.schedule_at(5.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.0]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancelled_events_skipped_by_peek(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        later = sim.schedule(2.0, lambda: None)
        event.cancel()
        assert sim.peek_time() == 2.0
        del later


class TestBoundedRuns:
    def test_run_until_holds_back_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0
        sim.run()
        assert fired == ["a", "b"]

    def test_run_until_advances_clock_even_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_bound(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(float(i), fired.append, i)
        sim.run(max_events=2)
        assert fired == [0, 1]

    def test_chained_run_until_is_cumulative(self):
        sim = Simulator()
        fired = []
        for i in range(1, 5):
            sim.schedule(float(i), fired.append, i)
        sim.run(until=1.5)
        sim.run(until=3.5)
        assert fired == [1, 2, 3]


class TestIntrospection:
    def test_idle_reporting(self):
        sim = Simulator()
        assert sim.idle()
        sim.schedule(1.0, lambda: None)
        assert not sim.idle()
        sim.run()
        assert sim.idle()

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 3

    def test_step_returns_false_when_idle(self):
        assert Simulator().step() is False


class TestCancellationAccounting:
    def test_cancel_counts_and_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()  # idempotent: must not double-count
        assert sim.events_cancelled == 1
        sim.run()
        assert sim.events_processed == 0

    def test_compaction_evicts_dead_entries(self):
        sim = Simulator()
        keep = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
        dead = [sim.schedule(50.0 + i, lambda: None) for i in range(500)]
        for ev in dead:
            ev.cancel()
        # Cancelling a majority of a big-enough queue triggers compaction.
        # Compaction is amortised, so a sub-threshold residue of dead
        # entries may linger — but the bulk must be gone.
        assert sim.queue_compactions >= 1
        assert len(keep) <= sim.pending_events() <= len(keep) + 2 * 64
        assert sim.events_cancelled == len(dead)
        sim.run()
        assert sim.events_processed == len(keep)

    def test_compaction_preserves_order(self):
        sim = Simulator()
        fired = []
        for i in range(200):
            sim.schedule(float(i), fired.append, i)
        victims = [sim.schedule(1000.0, lambda: None) for _ in range(300)]
        for ev in victims:
            ev.cancel()
        sim.run()
        assert fired == list(range(200))

    def test_small_queues_are_never_compacted(self):
        sim = Simulator()
        evs = [sim.schedule(float(i), lambda: None) for i in range(10)]
        for ev in evs:
            ev.cancel()
        assert sim.queue_compactions == 0
        sim.run()
        assert sim.events_processed == 0
