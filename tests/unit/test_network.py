"""Unit tests for the star-topology network model."""

import pytest

from repro.simnet.engine import SimulationError, Simulator
from repro.simnet.faults import FaultInjector
from repro.simnet.network import DEFAULT_PROPAGATION_DELAY, GBPS, Link, Packet, StarNetwork


class TestLink:
    def test_transmission_time(self):
        link = Link(Simulator(), bandwidth_bps=1_000_000)
        assert link.transmission_time(1250) == pytest.approx(0.01)  # 10 kb at 1 Mb/s

    def test_serialization_queues_back_to_back(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8_000)  # 1 byte per ms
        done = []
        link.enqueue(10, lambda: done.append(sim.now))
        link.enqueue(10, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.010), pytest.approx(0.020)]

    def test_idle_link_restarts_from_now(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8_000)
        done = []
        link.enqueue(10, lambda: done.append(sim.now))
        sim.run()  # clock now at 0.010
        sim.schedule(1.0, lambda: link.enqueue(10, lambda: done.append(sim.now)))
        sim.run()
        # Second transfer starts fresh at 1.010, not at the stale
        # busy_until horizon, and serializes for another 10 ms.
        assert done[1] == pytest.approx(1.020)

    def test_queue_delay(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=8_000)
        link.enqueue(10, lambda: None)
        assert link.queue_delay() == pytest.approx(0.010)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link(Simulator(), bandwidth_bps=0)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, bandwidth_bps=GBPS)
        link.enqueue(100, lambda: None)
        link.enqueue(200, lambda: None)
        assert link.packets_carried == 2
        assert link.bytes_carried == 300


class TestPacket:
    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Packet(1, 2, "x", 0)


class TestStarNetwork:
    def make(self):
        sim = Simulator()
        net = StarNetwork(sim, bandwidth_bps=1_000_000)
        return sim, net

    def test_delivery_to_handler(self):
        sim, net = self.make()
        received = []
        net.attach(1, lambda p: received.append((p.src, p.payload)))
        net.attach(2, lambda p: received.append(("wrong", p.payload)))
        net.send(2, 1, "hello", 100)
        sim.run()
        assert received == [(2, "hello")]

    def test_latency_includes_two_links_and_propagation(self):
        sim, net = self.make()
        arrival = []
        net.attach(1, lambda p: arrival.append(sim.now))
        net.attach(2, lambda p: None)
        net.send(2, 1, "x", 1250)  # 10 ms per link at 1 Mb/s
        sim.run()
        assert arrival[0] == pytest.approx(0.020 + DEFAULT_PROPAGATION_DELAY)

    def test_send_from_unattached_raises_simulation_error(self):
        # A detached source is a protocol-stack bug, not a network
        # condition: the error must be explicit, not a bare KeyError.
        sim, net = self.make()
        net.attach(1, lambda p: None)
        with pytest.raises(SimulationError, match="node 99 is not attached"):
            net.send(99, 1, "x", 10)

    def test_send_after_own_detach_raises(self):
        sim, net = self.make()
        net.attach(1, lambda p: None)
        net.attach(2, lambda p: None)
        net.detach(2)
        with pytest.raises(SimulationError):
            net.send(2, 1, "x", 10)

    def test_detached_destination_drops_silently_but_counted(self):
        sim, net = self.make()
        received = []
        net.attach(1, lambda p: received.append(p))
        net.attach(2, lambda p: None)
        net.send(2, 1, "x", 10)
        net.detach(1)
        sim.run()
        assert received == []
        assert net.packets_dropped == 1
        assert net.drops_by_reason == {"detached": 1}

    def test_detach_mid_flight_drops(self):
        sim, net = self.make()
        received = []
        net.attach(1, lambda p: received.append(p))
        net.attach(2, lambda p: None)
        net.send(2, 1, "x", 1250)
        sim.run(until=0.005)  # still serializing on the uplink
        net.detach(1)
        sim.run()
        assert received == []
        assert net.drops_by_reason == {"detached": 1}

    def test_double_attach_rejected(self):
        _sim, net = self.make()
        net.attach(1, lambda p: None)
        with pytest.raises(ValueError):
            net.attach(1, lambda p: None)

    def test_uplink_shared_downlinks_parallel(self):
        # One sender to two receivers: uplink serializes (20ms total),
        # two senders to one receiver: downlink serializes the same way.
        sim, net = self.make()
        times = {}
        for node in (1, 2, 3):
            net.attach(node, lambda p, n=node: times.setdefault(n, sim.now))
        net.send(1, 2, "a", 1250)
        net.send(1, 3, "b", 1250)
        sim.run()
        assert times[2] == pytest.approx(0.020 + DEFAULT_PROPAGATION_DELAY)
        assert times[3] == pytest.approx(0.030 + DEFAULT_PROPAGATION_DELAY)

    def test_delivery_counters(self):
        sim, net = self.make()
        net.attach(1, lambda p: None)
        net.attach(2, lambda p: None)
        net.send(1, 2, "x", 10)
        net.send(2, 1, "y", 20)
        sim.run()
        assert net.packets_delivered == 2
        assert net.bytes_delivered == 30
        assert net.packets_dropped == 0
        assert net.bytes_dropped == 0

    def test_loss_drops_are_counted(self):
        sim = Simulator()
        faults = FaultInjector(sim, seed=5, loss_rate=0.5)
        net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
        net.attach(1, lambda p: None)
        net.attach(2, lambda p: None)
        for _ in range(50):
            net.send(1, 2, "x", 10)
        sim.run()
        assert net.packets_delivered + net.packets_dropped == 50
        assert net.packets_dropped > 0
        assert net.drops_by_reason["loss"] == net.packets_dropped
        assert net.bytes_dropped == 10 * net.packets_dropped

    def test_degraded_link_slows_serialization(self):
        sim = Simulator()
        faults = FaultInjector(sim, seed=0)
        net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
        arrival = []
        net.attach(1, lambda p: arrival.append(sim.now))
        net.attach(2, lambda p: None)
        faults.schedule_degradation(2, at=0.0, duration=10.0, factor=0.5, direction="up")
        sim.run(until=1e-9)  # let the degradation window open
        net.send(2, 1, "x", 1250)  # nominally 10 ms/link at 1 Mb/s
        sim.run()
        # Uplink at half rate: 20 ms; downlink untouched: 10 ms.
        assert arrival[0] == pytest.approx(0.030 + DEFAULT_PROPAGATION_DELAY)

    def test_utilization_counts_time_not_bytes_under_degradation(self):
        # A transfer at half rate occupies the link twice as long;
        # utilization must report that real busy share, not
        # bytes_carried / nominal_bandwidth (which undercounts).
        sim = Simulator()
        faults = FaultInjector(sim, seed=0)
        net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
        net.attach(1, lambda p: None)
        net.attach(2, lambda p: None)
        faults.schedule_degradation(1, at=0.0, duration=10.0, factor=0.5, direction="up")
        sim.run(until=1e-9)
        net.send(1, 2, "x", 12_500)  # 0.1 s nominal -> 0.2 s at half rate
        sim.run()
        link = net.uplinks[1]
        assert link.busy_seconds == pytest.approx(0.2)
        assert link.utilization() == pytest.approx(0.2 / sim.now)
        # The byte-count estimate would have claimed half that.
        assert link.bytes_carried * 8 / link.bandwidth_bps == pytest.approx(0.1)

    def test_pair_drop_counters_attribute_loss_to_the_path(self):
        sim = Simulator()
        faults = FaultInjector(sim, seed=5, loss_rate=0.5)
        net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
        for nid in (1, 2, 3):
            net.attach(nid, lambda p: None)
        for _ in range(30):
            net.send(1, 2, "x", 10)
            net.send(3, 2, "x", 10)
        sim.run()
        assert sum(net.pair_drops.values()) == net.packets_dropped
        assert set(net.pair_drops) <= {(1, 2), (3, 2)}
        assert net.packets_dropped > 0
