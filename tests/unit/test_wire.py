"""Unit tests for the binary wire codecs."""

import pytest

from repro.core.messages import (
    Accusation,
    BlacklistShare,
    Broadcast,
    EvictionNotice,
    JoinAnnounce,
    JoinRequest,
    ReadyMessage,
    channel_domain,
    group_domain,
)
from repro.core.wire import WireError, decode_message, encode_message, encoded_size
from repro.crypto.keys import KeyPair

BIG = (1 << 127) + 12345


class TestRoundtrips:
    def test_broadcast_group(self):
        msg = Broadcast(group_domain(7), BIG, b"wire-bytes" * 100, 3)
        assert decode_message(encode_message(msg)) == msg

    def test_broadcast_channel(self):
        msg = Broadcast(channel_domain(9, 2), BIG, b"x", 0)
        assert decode_message(encode_message(msg)) == msg

    def test_accusation_with_msg_id(self):
        msg = Accusation(BIG, BIG - 1, group_domain(1), "missing-copy", 42)
        assert decode_message(encode_message(msg)) == msg

    def test_accusation_without_msg_id(self):
        msg = Accusation(1, 2, channel_domain(3, 4), "rate-high", None)
        assert decode_message(encode_message(msg)) == msg

    def test_join_request_sim_key(self):
        key = KeyPair.generate("sim", seed=1).public
        msg = JoinRequest(BIG, key.key_id, 777, key)
        assert decode_message(encode_message(msg)) == msg

    def test_join_request_dh_key(self):
        key = KeyPair.generate("dh", seed=1).public
        msg = JoinRequest(BIG, key.key_id, 777, key)
        decoded = decode_message(encode_message(msg))
        assert decoded.id_public_key.key_id == key.key_id
        assert decoded.id_public_key.dh_value == key.dh_value
        assert decoded.id_public_key.dh_group.prime == key.dh_group.prime

    def test_join_announce(self):
        key = KeyPair.generate("sim", seed=2).public
        msg = JoinAnnounce(JoinRequest(1, key.key_id, 2, key), sponsor=BIG)
        assert decode_message(encode_message(msg)) == msg

    def test_ready(self):
        msg = ReadyMessage(BIG)
        assert decode_message(encode_message(msg)) == msg

    def test_eviction_notice(self):
        msg = EvictionNotice(BIG, 12, BIG - 5)
        assert decode_message(encode_message(msg)) == msg

    def test_blacklist_share(self):
        msg = BlacklistShare(5, (1, 2, BIG))
        assert decode_message(encode_message(msg)) == msg

    def test_blacklist_share_empty(self):
        msg = BlacklistShare(5, ())
        assert decode_message(encode_message(msg)) == msg


class TestSizes:
    def test_broadcast_size_dominated_by_wire(self):
        small = Broadcast(group_domain(1), 1, b"a", 0)
        large = Broadcast(group_domain(1), 1, b"a" * 10_000, 0)
        assert encoded_size(large) - encoded_size(small) == 9_999

    def test_accusation_is_compact(self):
        msg = Accusation(BIG, BIG, group_domain(1), "replay", None)
        assert encoded_size(msg) < 128


class TestMalformedFrames:
    def test_empty_frame(self):
        with pytest.raises(WireError):
            decode_message(b"")

    def test_unknown_tag(self):
        with pytest.raises(WireError):
            decode_message(bytes([99]))

    def test_truncated_frame(self):
        frame = encode_message(ReadyMessage(BIG))
        with pytest.raises(WireError):
            decode_message(frame[:-3])

    def test_trailing_bytes_rejected(self):
        frame = encode_message(ReadyMessage(BIG))
        with pytest.raises(WireError):
            decode_message(frame + b"\x00")

    def test_announce_must_wrap_join(self):
        inner = encode_message(ReadyMessage(1))
        bad = bytes([4]) + len(inner).to_bytes(4, "big") + inner + (0).to_bytes(16, "big")
        with pytest.raises(WireError):
            decode_message(bad)

    def test_oversized_id_rejected_on_encode(self):
        with pytest.raises(WireError):
            encode_message(ReadyMessage(1 << 129))
