"""Public API surface: the documented entry points exist and export.

Guards against export regressions — everything README, PROTOCOL.md and
the examples reference must be importable from the documented location.
"""

import importlib

import pytest


TOP_LEVEL = ["RacConfig", "RacSystem", "__version__"]

MODULE_SURFACE = {
    "repro.core": ["RacNode", "RacConfig", "RacSystem", "build_onion", "peel", "HonestBehavior"],
    "repro.crypto": ["KeyPair", "seal", "run_shuffle", "oneway_f", "oneway_g"],
    "repro.simnet": ["Simulator", "StarNetwork", "ReliableTransport", "ThroughputMeter", "LatencyMeter", "Tracer"],
    "repro.overlay": ["RingTopology", "MembershipView", "BroadcastState", "ReplayableView"],
    "repro.groups": ["GroupDirectory", "ChannelDirectory", "solve_puzzle", "verify_puzzle"],
    "repro.baselines": ["DCNet", "DissentV1Group", "DissentV2System", "OnionRoutingNetwork", "DissentV1Sim", "DissentV2Sim"],
    "repro.analysis": [
        "sender_break_grouped",
        "receiver_break_grouped",
        "rac_throughput",
        "dissent_v1_throughput",
        "NashAnalysis",
        "GlobalObserver",
        "LogProb",
        "rounds_to_deanonymize",
        "degree_of_anonymity",
        "sybil_placement_cost",
        "predicted_latency",
    ],
    "repro.freeride": [
        "ForwardDropper",
        "SilentRelay",
        "ReplayAttacker",
        "Flooder",
        "SelectiveDropper",
        "BEHAVIORS",
        "behavior_names",
        "make_behavior",
    ],
    "repro.campaign": [
        "CampaignSpec",
        "run_campaign",
        "run_campaign_cell",
        "build_frontier",
        "campaign_report",
    ],
    "repro.experiments": [
        "figure1",
        "figure3",
        "table1",
        "all_claims",
        "nash_table",
        "measure_rac_throughput",
        "trace_dissemination",
        "recommend_parameters",
        "full_report",
        "coverage_vs_rings",
        "anonymity_vs_population",
    ],
}


class TestTopLevel:
    def test_package_exports(self):
        repro = importlib.import_module("repro")
        for name in TOP_LEVEL:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)


@pytest.mark.parametrize("module_name", sorted(MODULE_SURFACE))
def test_module_surface(module_name):
    module = importlib.import_module(module_name)
    for name in MODULE_SURFACE[module_name]:
        assert hasattr(module, name), f"{module_name}.{name}"
        assert name in module.__all__, f"{name} missing from {module_name}.__all__"


def test_cli_module_runs():
    from repro.cli import build_parser

    parser = build_parser()
    commands = {a.dest for a in parser._subparsers._group_actions[0]._choices_actions}
    # argparse stores choices differently across versions; fall back:
    assert parser is not None
