"""Unit tests for the Dissent v1 accountable shuffle."""

import random

import pytest

from repro.crypto.shuffle import DishonestParticipant, ShuffleParticipant, run_shuffle


def make_participants(n, seed=0):
    return [ShuffleParticipant(i, rng=random.Random(seed * 100 + i)) for i in range(n)]


def fixed_messages(n, length=32):
    return [bytes([65 + i]) * length for i in range(n)]


class TestHonestRuns:
    def test_outputs_are_a_permutation_of_inputs(self):
        messages = fixed_messages(5)
        result = run_shuffle(make_participants(5), messages)
        assert result.success
        assert sorted(result.messages) == sorted(messages)

    def test_no_blame_on_success(self):
        result = run_shuffle(make_participants(4), fixed_messages(4))
        assert result.blamed == []

    def test_single_member(self):
        result = run_shuffle(make_participants(1), fixed_messages(1))
        assert result.success
        assert result.messages == fixed_messages(1)

    def test_two_members(self):
        result = run_shuffle(make_participants(2), fixed_messages(2))
        assert result.success

    def test_message_count_accounting(self):
        n = 4
        result = run_shuffle(make_participants(n), fixed_messages(n))
        # n submissions + n batches of n items + n inner-key reveals
        assert result.messages_sent == n + n * n + n

    def test_shuffles_are_actually_permuted_sometimes(self):
        # Over several runs, at least one must reorder the batch
        # (probability of all-identity across 5 runs of 6! orders ~ 0).
        messages = fixed_messages(6)
        reordered = False
        for seed in range(5):
            result = run_shuffle(make_participants(6, seed=seed), messages)
            assert result.success
            if result.messages != messages:
                reordered = True
        assert reordered


class TestValidation:
    def test_wrong_message_count_rejected(self):
        with pytest.raises(ValueError):
            run_shuffle(make_participants(3), fixed_messages(2))

    def test_variable_lengths_rejected(self):
        with pytest.raises(ValueError):
            run_shuffle(make_participants(2), [b"short", b"much longer message"])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            run_shuffle([], [])


class TestAccountability:
    @pytest.mark.parametrize("mode", DishonestParticipant.MODES)
    def test_every_misbehaviour_mode_is_blamed(self, mode):
        n = 5
        cheater_index = 2
        participants = []
        for i in range(n):
            if i == cheater_index:
                participants.append(
                    DishonestParticipant(i, mode, rng=random.Random(77 + i))
                )
            else:
                participants.append(ShuffleParticipant(i, rng=random.Random(77 + i)))
        result = run_shuffle(participants, fixed_messages(n))
        assert not result.success
        assert result.messages is None
        assert result.blamed == [cheater_index]

    @pytest.mark.parametrize("cheater_index", [0, 3])
    def test_blame_finds_cheater_at_any_position(self, cheater_index):
        n = 4
        participants = [
            DishonestParticipant(i, "corrupt", rng=random.Random(i))
            if i == cheater_index
            else ShuffleParticipant(i, rng=random.Random(i))
            for i in range(n)
        ]
        result = run_shuffle(participants, fixed_messages(n))
        assert not result.success
        assert result.blamed == [cheater_index]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            DishonestParticipant(0, "teleport")

    def test_failed_run_reveals_no_messages(self):
        participants = [
            DishonestParticipant(0, "drop", rng=random.Random(0)),
            ShuffleParticipant(1, rng=random.Random(1)),
            ShuffleParticipant(2, rng=random.Random(2)),
        ]
        result = run_shuffle(participants, fixed_messages(3))
        assert result.messages is None
