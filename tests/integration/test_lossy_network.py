"""Integration: the full RAC stack on a *lossy* network.

The paper's misbehaviour detection assumes TCP on a lossless router
(footnote 6), so any missing message is freeriding. These tests extend
the chaos-test invariant — *no honest live node is ever evicted* — to
networks with packet loss and link outages: the ARQ transport must
mask loss faster than the misbehaviour timers fire, while injected
freeriders are still caught.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.strategies import ForwardDropper, SilentRelay


def lossy_config(**overrides):
    """The freerider-test configuration plus loss, with the detection
    timers opened up to leave the ARQ its retransmission budget."""
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=2.0,
        predecessor_timeout=1.2,
        rate_window=2.0,
        blacklist_period=1.5,
        puzzle_bits=2,
        link_loss_rate=0.1,
        # Cap the backoff: after an outage heals, the next probe must
        # come within one rto_max, not wherever the doubling ran off to
        # — the misbehaviour deadlines do not wait for it.
        transport_rto_max=0.25,
    )
    base.update(overrides)
    return RacConfig(**base)


def drive_traffic(system, honest, until, stop_when=None):
    step = 0
    while system.now < until:
        live = [n for n in honest if n not in system.evicted]
        for i, src in enumerate(live):
            system.send(src, live[(i + 1) % len(live)], b"lossy-flow-%d" % step)
        system.run(0.6)
        step += 1
        if stop_when is not None and stop_when():
            return


class TestLossyAcceptance:
    """The ISSUE acceptance scenario: 16 nodes, 10% loss, one outage."""

    def test_freeriders_evicted_honest_spared(self):
        system = RacSystem(lossy_config(), seed=21)
        nodes = system.bootstrap(16, behaviors={3: ForwardDropper(1.0), 9: SilentRelay()})
        dropper, silent = nodes[3], nodes[9]
        honest = [n for n in nodes if n not in (dropper, silent)]
        system.run(1.0)
        # One honest node loses both links for 0.4 s — well inside the
        # ARQ's recovery budget, so it must NOT be accused.
        system.inject_link_outage(honest[2], duration=0.4)
        drive_traffic(
            system,
            honest,
            until=40.0,
            stop_when=lambda: dropper in system.evicted and silent in system.evicted,
        )
        assert dropper in system.evicted
        assert system.evicted[dropper]["kind"] == "predecessor"
        assert silent in system.evicted
        assert system.evicted[silent]["kind"] == "relay"
        false_evictions = [n for n in system.evicted if n in honest]
        assert false_evictions == []
        # The network really was lossy, the ARQ really did work.
        report = system.stats_report()
        assert report["net_packets_dropped"] > 0
        assert report["net_dropped_loss"] > 0
        assert report["net_dropped_outage"] > 0
        assert report["transport_retransmits"] > 0
        # And traffic still flows end to end afterwards.
        src, dst = honest[0], honest[1]
        assert system.send(src, dst, b"after the storm")
        system.run(8.0)
        assert b"after the storm" in system.delivered_messages(dst)

    def test_partition_shorter_than_timers_is_tolerated(self):
        system = RacSystem(lossy_config(link_loss_rate=0.05), seed=8)
        nodes = system.bootstrap(12)
        system.run(1.0)
        half = len(nodes) // 2
        system.inject_partition(nodes[:half], nodes[half:], duration=0.4)
        drive_traffic(system, nodes, until=8.0)
        system.run(4.0)
        assert system.evicted == {}


class TestSeededReplay:
    """A seeded lossy run replays identically — drops, retransmits,
    deliveries and all."""

    @staticmethod
    def run_once(seed=13):
        system = RacSystem(lossy_config(), seed=seed)
        nodes = system.bootstrap(10)
        system.run(0.5)
        system.inject_link_outage(nodes[4], duration=0.3)
        for step in range(6):
            for i, src in enumerate(nodes):
                system.send(src, nodes[(i + 1) % len(nodes)], b"replay-%d" % step)
            system.run(0.8)
        deliveries = tuple(
            (nid, tuple(system.nodes[nid].delivered), tuple(system.nodes[nid].delivered_at))
            for nid in sorted(system.nodes)
        )
        return (
            system.sim.events_processed,
            tuple(sorted(system.stats_report().items())),
            deliveries,
        )

    def test_identical_traces(self):
        assert self.run_once() == self.run_once()

    def test_different_seeds_diverge(self):
        assert self.run_once(13) != self.run_once(14)


class TestTimerValidation:
    def test_lossy_config_with_starved_timers_rejected(self):
        config = lossy_config(
            predecessor_timeout=0.15, transport_rto_initial=0.05, send_interval=0.05
        )
        system = RacSystem(config, seed=0)
        with pytest.raises(ValueError, match="retransmission budget"):
            system.bootstrap(4)

    def test_lossless_config_skips_the_arq_budget_check(self):
        config = lossy_config(
            link_loss_rate=0.0, predecessor_timeout=0.15, send_interval=0.05
        )
        system = RacSystem(config, seed=0)
        system.bootstrap(4)  # must not raise
