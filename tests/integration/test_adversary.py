"""Integration tests: active opponent behaviours (Section V-A2)."""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.adversary import FalseAccuser, Flooder, PathDropOpponent, ReplayAttacker


def config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=0.8,
        predecessor_timeout=0.5,
        rate_window=1.0,
        blacklist_period=1.0,
        puzzle_bits=2,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestReplayAttacker:
    def test_replay_detected_and_evicted(self):
        system = RacSystem(config(), seed=21)
        nodes = system.bootstrap(12, behaviors={2: ReplayAttacker()})
        attacker = nodes[2]
        system.run(5.0)
        assert attacker in system.evicted
        assert [n for n in system.evicted if n != attacker] == []

    def test_replay_accusations_logged(self):
        system = RacSystem(config(), seed=22)
        system.bootstrap(12, behaviors={2: ReplayAttacker()})
        system.run(5.0)
        assert system.stats.value("accusation_replay") >= 1

    def test_copies_validation(self):
        with pytest.raises(ValueError):
            ReplayAttacker(copies=1)


class TestFalseAccuser:
    def test_single_accuser_cannot_evict(self):
        # The threshold is t+1 = 2 followers here, and only followers
        # count — one lying opponent achieves nothing (§V-A2 case 2).
        probe = RacSystem(config(), seed=23)
        victims = probe.bootstrap(12)
        victim = victims[5]
        system = RacSystem(config(), seed=23)
        nodes = system.bootstrap(12, behaviors={3: FalseAccuser(victim)})
        # Same seed => same ids; victim is an honest node.
        assert nodes == victims
        system.run(6.0)
        assert victim not in system.evicted
        assert system.evicted == {}

    def test_two_colluding_followers_meet_threshold_only_if_followers(self):
        # Put two false accusers in: eviction happens only when both
        # happen to be ring-followers of the victim; assert the protocol
        # never evicts on non-follower accusations.
        probe = RacSystem(config(), seed=24)
        ids = probe.bootstrap(12)
        victim = ids[0]
        system = RacSystem(config(), seed=24)
        nodes = system.bootstrap(
            12, behaviors={4: FalseAccuser(victim), 7: FalseAccuser(victim)}
        )
        system.run(6.0)
        if victim in system.evicted:
            view = system.domain_view(("group", system.evicted[victim]["gid"]))
            # can't check post-eviction topology; instead assert the
            # accusers were followers at bootstrap time
            followers = probe.domain_view(("group", probe.group_of(victim))).successor_set(victim)
            assert {nodes[4], nodes[7]} <= followers
        # Either way, no honest cascade.
        assert all(n == victim for n in system.evicted)


class TestFlooder:
    def test_rate_high_detection(self):
        system = RacSystem(config(), seed=25)
        nodes = system.bootstrap(12, behaviors={1: Flooder(extra_per_tick=60)})
        flooder = nodes[1]
        system.run(8.0)
        assert flooder in system.evicted
        assert [n for n in system.evicted if n != flooder] == []

    def test_flooder_validation(self):
        with pytest.raises(ValueError):
            Flooder(extra_per_tick=0)


class TestPathDropOpponent:
    def test_burned_with_senders_like_a_freerider(self):
        system = RacSystem(config(), seed=26)
        nodes = system.bootstrap(14, behaviors={0: PathDropOpponent()})
        opponent = nodes[0]
        honest = [n for n in nodes if n != opponent]
        system.run(1.2)
        step = 0
        while system.now < 30.0 and opponent not in system.evicted:
            for i, src in enumerate(honest):
                system.send(src, honest[(i + 1) % len(honest)], b"f-%d" % step)
            system.run(0.6)
            step += 1
        assert opponent in system.evicted
        assert system.evicted[opponent]["kind"] == "relay"
