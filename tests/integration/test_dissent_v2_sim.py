"""Integration tests: Dissent v2 over the packet network."""

import pytest

from repro.baselines.dissent_v1_sim import DissentV1Sim
from repro.baselines.dissent_v2_sim import DissentV2Sim


class TestPacketLevelRound:
    def test_round_delivers_everything(self):
        sim = DissentV2Sim(9, server_count=3, message_length=500, seed=1)
        messages = [b"c-%d" % i for i in range(9)]
        result = sim.run_round(messages)
        assert result.success
        assert sorted(result.messages) == sorted(messages)

    def test_all_clients_get_the_same_batch(self):
        sim = DissentV2Sim(6, server_count=2, message_length=400, seed=2)
        result = sim.run_round([b"x%d" % i for i in range(6)])
        assert result.success
        batches = {tuple(v) for v in sim._client_results.values()}
        assert len(batches) == 1

    def test_goodput_decays_with_clients_at_fixed_servers(self):
        def goodput(n):
            sim = DissentV2Sim(n, server_count=4, message_length=1000, seed=3)
            result = sim.run_round([b"p%d" % i for i in range(n)])
            assert result.success
            return result.per_client_goodput_bps(1000)

        assert goodput(8) > goodput(32) * 2

    def test_v2_beats_v1_at_scale(self):
        # The whole point of Dissent v2, now from real packets: at
        # N=16 the server-tier pass beats v1's everyone-mixes pass.
        n = 16
        v1 = DissentV1Sim(n, message_length=1000, seed=4)
        r1 = v1.run_round([b"m%d" % i for i in range(n)])
        v2 = DissentV2Sim(n, server_count=4, message_length=1000, seed=4)
        r2 = v2.run_round([b"m%d" % i for i in range(n)])
        assert r1.success and r2.success
        assert r2.round_time < r1.round_time

    def test_validation(self):
        with pytest.raises(ValueError):
            DissentV2Sim(1)
        with pytest.raises(ValueError):
            DissentV2Sim(8, server_count=1)
        sim = DissentV2Sim(4, server_count=2, message_length=8)
        with pytest.raises(ValueError):
            sim.run_round([b"short"])
