"""Integration tests: Dissent v1 over the packet network."""

import pytest

from repro.baselines.dissent_v1_sim import DissentV1Sim


class TestPacketLevelRound:
    def test_round_delivers_everything(self):
        sim = DissentV1Sim(6, message_length=500, seed=1)
        messages = [b"m-%d" % i for i in range(6)]
        result = sim.run_round(messages)
        assert result.success
        assert sorted(result.messages) == sorted(messages)

    def test_every_member_recovers_the_same_batch(self):
        sim = DissentV1Sim(5, message_length=400, seed=2)
        result = sim.run_round([b"x%d" % i for i in range(5)])
        assert result.success
        batches = [tuple(m.delivered) for m in sim.members]
        assert len(set(batches)) == 1

    def test_round_time_is_positive_and_bytes_counted(self):
        sim = DissentV1Sim(4, message_length=500, seed=3)
        result = sim.run_round([b"a", b"b", b"c", b"d"])
        assert result.round_time > 0
        assert result.bytes_on_wire > 4 * 500

    def test_goodput_collapses_superquadratically(self):
        # The Figure 1 shape from real packets: doubling N costs at
        # least 4x per-member goodput (quadratic), in practice more
        # because onion layers grow with N too.
        def goodput(n):
            sim = DissentV1Sim(n, message_length=1000, seed=4)
            result = sim.run_round([b"p%d" % i for i in range(n)])
            assert result.success
            return result.per_member_goodput_bps(1000)

        g4, g8, g16 = goodput(4), goodput(8), goodput(16)
        assert g4 / g8 > 3.5
        assert g8 / g16 > 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            DissentV1Sim(1)
        sim = DissentV1Sim(3, message_length=8)
        with pytest.raises(ValueError):
            sim.run_round([b"only", b"two"])
        with pytest.raises(ValueError):
            sim.run_round([b"toolongmessage", b"b", b"c"])
