"""Integration tests: the join handshake's puzzle gate (Section IV-C).

An opponent cannot pick its group: the node id is ``g(K, y)`` with y a
brute-forced puzzle solution, and every group member re-verifies the
solution before admitting.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.messages import JoinRequest
from repro.core.system import RacSystem
from repro.crypto.keys import KeyPair
from repro.groups.assignment import solve_puzzle


def config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.0,
        predecessor_timeout=0.5,
        rate_window=1.0,
        blacklist_period=0.0,
        puzzle_bits=4,
    )
    base.update(overrides)
    return RacConfig(**base)


def build_system(seed=61, n=8):
    system = RacSystem(config(), seed=seed)
    system.bootstrap(n)
    system.run(0.5)
    return system


class TestHonestJoin:
    def test_join_verifies_at_every_member(self):
        system = build_system()
        before = system.stats.value("join_puzzle_verifications")
        system.join()
        after = system.stats.value("join_puzzle_verifications")
        assert after - before >= 8  # one check per member

    def test_valid_external_request_admitted(self):
        system = build_system(seed=62)
        key = KeyPair.generate("sim", seed=12345)
        import random

        puzzle = solve_puzzle(key.public.key_id, 4, rng=random.Random(1))
        request = JoinRequest(puzzle.node_id, key.public.key_id, puzzle.vector, key.public)
        assert system.submit_join_request(request)
        assert puzzle.node_id in system.directory.node_ids


class TestForgedJoin:
    def test_wrong_vector_rejected(self):
        system = build_system(seed=63)
        key = KeyPair.generate("sim", seed=999)
        forged = JoinRequest(
            node_id=123456789,  # chosen id, no valid puzzle behind it
            key_id=key.public.key_id,
            puzzle_vector=42,
            id_public_key=key.public,
        )
        assert not system.submit_join_request(forged)
        assert 123456789 not in system.directory.node_ids
        assert system.stats.value("join_rejected_bad_puzzle") == 1

    def test_chosen_group_id_rejected(self):
        # An opponent who solved a real puzzle cannot transplant the
        # solution onto a *different* (targeted) node id.
        system = build_system(seed=64)
        key = KeyPair.generate("sim", seed=1000)
        import random

        puzzle = solve_puzzle(key.public.key_id, 4, rng=random.Random(2))
        target_id = puzzle.node_id ^ 0xFFFF  # aim elsewhere in the space
        forged = JoinRequest(target_id, key.public.key_id, puzzle.vector, key.public)
        assert not system.submit_join_request(forged)
        assert target_id not in system.directory.node_ids

    def test_vector_equal_to_key_rejected(self):
        system = build_system(seed=65)
        key = KeyPair.generate("sim", seed=1001)
        from repro.crypto.hashes import oneway_g

        kid = key.public.key_id
        forged = JoinRequest(oneway_g(kid, kid), kid, kid, key.public)
        assert not system.submit_join_request(forged)
