"""Integration tests: the protocol under non-ideal network conditions.

The paper evaluates on an ideal jitter-free network (its footnote 1);
a credible implementation must also survive delay variance without
false accusations — the timers are sized in seconds while jitter is
milliseconds, so reordering may happen but verdicts must not change.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.strategies import ForwardDropper


def config(jitter, **overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.5,
        predecessor_timeout=0.8,
        rate_window=1.5,
        blacklist_period=2.0,
        puzzle_bits=2,
        propagation_jitter=jitter,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestJitterRobustness:
    @pytest.mark.parametrize("jitter", [0.001, 0.01])
    def test_no_false_accusations_under_jitter(self, jitter):
        system = RacSystem(config(jitter), seed=81)
        nodes = system.bootstrap(12)
        system.run(1.5)
        for i in range(6):
            system.send(nodes[i], nodes[(i + 4) % 12], b"jittered-%d" % i)
        system.run(6.0)
        assert system.evicted == {}
        for i in range(6):
            assert system.delivered_messages(nodes[(i + 4) % 12]) == [b"jittered-%d" % i]

    def test_freerider_still_caught_under_jitter(self):
        system = RacSystem(config(0.01), seed=82)
        nodes = system.bootstrap(12, behaviors={2: ForwardDropper(1.0)})
        system.run(6.0)
        assert nodes[2] in system.evicted
        assert [n for n in system.evicted if n != nodes[2]] == []

    def test_transport_reorders_but_delivers_fifo(self):
        # Direct check that jitter-induced reordering is absorbed by
        # the transport's hold-back queue.
        from repro.simnet.engine import Simulator
        from repro.simnet.network import StarNetwork
        from repro.simnet.transport import ReliableTransport

        sim = Simulator()
        net = StarNetwork(sim, bandwidth_bps=1e9, propagation_jitter=0.05, jitter_seed=3)
        transport = ReliableTransport(net)
        got = []
        transport.attach(1, lambda src, payload: got.append(payload))
        transport.attach(2, lambda src, payload: None)
        for i in range(20):
            transport.send(2, 1, i, 100)
        sim.run()
        assert got == list(range(20))

    def test_negative_jitter_rejected(self):
        from repro.simnet.engine import Simulator
        from repro.simnet.network import StarNetwork

        with pytest.raises(ValueError):
            StarNetwork(Simulator(), propagation_jitter=-0.1)
