"""Integration tests: the global passive opponent measures nothing.

The empirical counterpart of Table I: a tap on every link, full
traffic logs, and attribution at chance level.
"""

import pytest

from repro.analysis.observer import GlobalObserver
from repro.core.config import RacConfig
from repro.core.system import RacSystem


@pytest.fixture(scope="module")
def observed_run():
    config = RacConfig(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.5,
        predecessor_timeout=0.6,
        rate_window=1.2,
        blacklist_period=0.0,
        puzzle_bits=2,
    )
    system = RacSystem(config, seed=31)
    nodes = system.bootstrap(12)
    observer = GlobalObserver(system, rng_seed=5)
    observer.attach()
    system.run(1.5)
    flows = []
    for i in range(8):
        src, dst = nodes[i % len(nodes)], nodes[(i + 5) % len(nodes)]
        if src != dst and system.send(src, dst, b"secret-%d" % i):
            flows.append((src, dst))
    system.run(6.0)
    return system, observer, nodes, flows


class TestObservability:
    def test_observer_sees_all_the_traffic(self, observed_run):
        _system, observer, nodes, _flows = observed_run
        assert observer.traffic_volume() > 1000
        assert len(observer.observed_message_ids()) > 100

    def test_rate_uniformity_under_noise(self, observed_run):
        # Constant-rate sending makes every node look alike: no node
        # transmits much more than the mean.
        _system, observer, _nodes, _flows = observed_run
        assert observer.rate_uniformity() < 1.5

    def test_every_node_transmits(self, observed_run):
        _system, observer, nodes, _flows = observed_run
        counts = observer.transmission_counts()
        for node in nodes:
            assert counts.get(node, 0) > 0


class TestAttribution:
    def test_sender_attribution_is_chance_level(self, observed_run):
        system, observer, nodes, flows = observed_run
        # Sample real (msg, sender) pairs from the tracer-free ground
        # truth: use each flow's sender with an arbitrary observed id.
        samples = [(observer.observed_message_ids()[i], src) for i, (src, _dst) in enumerate(flows)]
        accuracy = observer.sender_attribution_accuracy(samples)
        # Chance level is 1/12; with 8 samples allow generous slack but
        # rule out anything resembling real attribution power.
        assert accuracy <= 0.5

    def test_anonymity_set_is_the_group(self, observed_run):
        system, observer, nodes, flows = observed_run
        src = flows[0][0]
        result = observer.attribute_sender(observer.observed_message_ids()[0], src)
        assert result.anonymity_set_size == len(nodes)

    def test_entropy_matches_group_size(self, observed_run):
        import math

        system, observer, nodes, flows = observed_run
        bits = observer.anonymity_entropy_bits(observer.observed_message_ids()[0], flows[0][0])
        assert bits == pytest.approx(math.log2(len(nodes)))

    def test_receiver_candidates_cover_group(self, observed_run):
        system, observer, nodes, flows = observed_run
        result = observer.attribute_receiver(observer.observed_message_ids()[0], flows[0][1])
        assert set(nodes) <= set(result.candidates)

    def test_double_attach_rejected(self, observed_run):
        system, observer, _nodes, _flows = observed_run
        with pytest.raises(RuntimeError):
            observer.attach()
