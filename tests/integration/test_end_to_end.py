"""End-to-end integration tests: full RAC systems in the packet simulator."""

import itertools

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


def small_config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.0,
        predecessor_timeout=0.5,
        rate_window=1.0,
        blacklist_period=2.0,
        puzzle_bits=2,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestIntraGroupDelivery:
    def test_single_message(self):
        system = RacSystem(small_config(), seed=7)
        nodes = system.bootstrap(12)
        system.run(1.5)
        assert system.send(nodes[0], nodes[5], b"hello, anonymous world")
        system.run(4.0)
        assert system.delivered_messages(nodes[5]) == [b"hello, anonymous world"]
        assert not system.evicted

    def test_many_messages_all_delivered_once(self):
        system = RacSystem(small_config(), seed=8)
        nodes = system.bootstrap(10)
        system.run(1.5)
        expected = {}
        for i in range(6):
            src, dst = nodes[i], nodes[(i + 3) % len(nodes)]
            payload = b"m-%d" % i
            assert system.send(src, dst, payload)
            expected.setdefault(dst, []).append(payload)
        system.run(6.0)
        for dst, payloads in expected.items():
            assert sorted(system.delivered_messages(dst)) == sorted(payloads)

    def test_no_duplicate_deliveries(self):
        system = RacSystem(small_config(), seed=9)
        nodes = system.bootstrap(8)
        system.run(1.5)
        system.send(nodes[0], nodes[3], b"once")
        system.run(5.0)
        assert system.delivered_messages(nodes[3]).count(b"once") == 1

    def test_wire_check_round_trips_every_unicast(self):
        """With ``wire_check`` on, every unicast payload is re-encoded,
        re-decoded and size-audited in flight; a full run completing
        with deliveries proves the wire codec and the byte accounting
        agree for every message class the protocol emits."""
        system = RacSystem(small_config(wire_check=True), seed=7)
        nodes = system.bootstrap(12)
        system.run(1.5)
        assert system.send(nodes[0], nodes[5], b"audited payload")
        system.run(4.0)
        assert system.delivered_messages(nodes[5]) == [b"audited payload"]
        checks = system.stats.as_dict().get("wire_checks", 0)
        assert checks > 0, "wire_check ran but audited nothing"

    def test_non_destinations_deliver_nothing(self):
        system = RacSystem(small_config(), seed=10)
        nodes = system.bootstrap(8)
        system.run(1.5)
        system.send(nodes[0], nodes[3], b"private")
        system.run(5.0)
        for node in nodes:
            if node != nodes[3]:
                assert system.delivered_messages(node) == []

    def test_all_honest_run_has_no_evictions(self):
        system = RacSystem(small_config(), seed=11)
        system.bootstrap(14)
        system.run(8.0)
        assert system.evicted == {}


class TestCrossGroupDelivery:
    def build(self, seed=12):
        system = RacSystem(small_config(group_min=4, group_max=10), seed=seed)
        nodes = system.bootstrap(24)
        assert len(system.directory.groups) >= 2
        system.run(2.0)
        return system, nodes

    def cross_pair(self, system, nodes):
        gids = {n: system.group_of(n) for n in nodes}
        return next(
            (a, b) for a, b in itertools.permutations(nodes, 2) if gids[a] != gids[b]
        )

    def test_channel_delivery(self):
        system, nodes = self.build()
        src, dst = self.cross_pair(system, nodes)
        assert system.send(src, dst, b"cross-group hello")
        system.run(6.0)
        assert system.delivered_messages(dst) == [b"cross-group hello"]

    def test_channel_broadcast_accounted(self):
        system, nodes = self.build(seed=13)
        src, dst = self.cross_pair(system, nodes)
        system.send(src, dst, b"x")
        system.run(6.0)
        assert system.stats.value("channel_broadcasts") >= 1

    def test_bidirectional_cross_group(self):
        system, nodes = self.build(seed=14)
        src, dst = self.cross_pair(system, nodes)
        system.send(src, dst, b"ping")
        system.send(dst, src, b"pong")
        system.run(7.0)
        assert system.delivered_messages(dst) == [b"ping"]
        assert system.delivered_messages(src) == [b"pong"]


class TestJoin:
    def test_joiner_becomes_member_and_can_receive(self):
        system = RacSystem(small_config(), seed=15)
        nodes = system.bootstrap(8)
        system.run(1.0)
        joiner = system.join()
        assert joiner in system.directory.node_ids
        system.run(1.5)  # settle + quarantine
        system.send(nodes[0], joiner, b"welcome")
        system.run(4.0)
        assert system.delivered_messages(joiner) == [b"welcome"]

    def test_joiner_quarantined_as_relay(self):
        system = RacSystem(small_config(join_settle_time=5.0), seed=16)
        system.bootstrap(8)
        system.run(1.0)
        joiner = system.join()
        assert not system.usable_as_relay(joiner)
        system.run(2 * 5.0 + 0.1)
        assert system.usable_as_relay(joiner)

    def test_join_requires_bootstrap(self):
        system = RacSystem(small_config(), seed=17)
        with pytest.raises(RuntimeError):
            system.join()

    def test_join_costs_accounted(self):
        system = RacSystem(small_config(), seed=18)
        system.bootstrap(8)
        before = system.stats.value("join_broadcasts")
        system.join()
        assert system.stats.value("join_broadcasts") > before


class TestGroupLifecycleUnderTraffic:
    def test_splits_preserve_delivery(self):
        system = RacSystem(small_config(group_min=3, group_max=8), seed=19)
        nodes = system.bootstrap(20)
        assert len(system.directory.groups) >= 2
        system.directory.check_invariants()
        system.run(2.0)
        gid_groups = {}
        for node in nodes:
            gid_groups.setdefault(system.group_of(node), []).append(node)
        # One intra-group flow inside the largest group.
        largest = max(gid_groups.values(), key=len)
        assert system.send(largest[0], largest[1], b"post-split")
        system.run(5.0)
        assert system.delivered_messages(largest[1]) == [b"post-split"]

    def test_constant_rate_noise_flows(self):
        system = RacSystem(small_config(), seed=20)
        system.bootstrap(8)
        system.run(3.0)
        assert system.stats.value("noise_broadcasts") > 8 * 20  # ~ 8 nodes * 60 ticks
