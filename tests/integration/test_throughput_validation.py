"""Packet-level validation of the analytic throughput model.

The Figure 1/3 sweeps to N = 100 000 use the closed-form saturation
model; these tests pin that model to the real protocol by measuring the
packet simulator at small N and asserting (a) a stable efficiency
factor and (b) the 1/G scaling the figures rely on.

These are the slowest tests in the suite (tens of wall seconds): they
run a saturated packet simulation end to end.
"""

import pytest

from repro.experiments.empirical import measure_rac_throughput
from repro.experiments.fig1 import empirical_dissent_v1_point, empirical_dissent_v2_point
from repro.analysis.throughput import dissent_v1_throughput, dissent_v2_throughput


class TestRacModelValidation:
    @pytest.fixture(scope="class")
    def measurements(self):
        return {
            n: measure_rac_throughput(n, warmup=1.0, duration=4.0, seed=2)
            for n in (8, 16)
        }

    def test_measured_within_model_envelope(self, measurements):
        # Saturation margin (1.25) and slot sharing bound efficiency
        # from above by 0.8; protocol overheads keep it above ~0.4.
        for m in measurements.values():
            assert 0.4 < m.efficiency <= 1.0, m

    def test_efficiency_stable_across_sizes(self, measurements):
        effs = [m.efficiency for m in measurements.values()]
        assert max(effs) / min(effs) < 1.5

    def test_one_over_g_scaling(self, measurements):
        t8 = measurements[8].measured_bps_per_node
        t16 = measurements[16].measured_bps_per_node
        assert t8 / t16 == pytest.approx(2.0, rel=0.35)

    def test_no_evictions_at_saturation(self, measurements):
        # Saturated honest traffic must not trip the misbehaviour
        # checks (no false positives under load).
        for m in measurements.values():
            assert m.evictions == 0

    def test_plenty_of_deliveries(self, measurements):
        for m in measurements.values():
            assert m.deliveries > 50


class TestBaselineModelValidation:
    def test_dissent_v1_counted_cost_matches_model_shape(self):
        # Empirical per-node goodput from counted wire copies must scale
        # like the analytic 1/N^2 (ratio 4 when N doubles).
        e8 = empirical_dissent_v1_point(8, message_length=1000)
        e16 = empirical_dissent_v1_point(16, message_length=1000)
        assert e8 / e16 == pytest.approx(4.0, rel=0.35)

    def test_dissent_v1_magnitude_near_model(self):
        measured = empirical_dissent_v1_point(10, message_length=1000)
        model = dissent_v1_throughput(10)
        assert 0.2 < measured / model < 5.0

    def test_dissent_v2_bottleneck_grows_with_n(self):
        e8 = empirical_dissent_v2_point(8, message_length=1000, servers=2)
        e32 = empirical_dissent_v2_point(32, message_length=1000, servers=2)
        assert e8 > e32  # decaying with N at fixed servers

    def test_dissent_v2_magnitude_near_model(self):
        measured = empirical_dissent_v2_point(16, message_length=1000, servers=4)
        model = dissent_v2_throughput(16, servers=4)
        assert 0.1 < measured / model < 10.0
