"""Stress test: several groups, full cross-group traffic matrix.

The scalability architecture in one test: N nodes across >= 3 groups,
flows between every group pair (so multiple channels are live at once),
everyone honest — all messages deliver exactly once, no evictions, and
channel broadcasts are charged for every inter-group flow.
"""

import itertools

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


@pytest.fixture(scope="module")
def stressed_system():
    config = RacConfig.small(
        group_min=3,
        group_max=8,
        predecessor_timeout=0.8,
        relay_timeout=1.5,
        rate_window=1.5,
        blacklist_period=3.0,
    )
    system = RacSystem(config, seed=131)
    nodes = system.bootstrap(30)
    assert len(system.directory.groups) >= 3
    system.run(2.0)

    by_group = {}
    for node in nodes:
        by_group.setdefault(system.group_of(node), []).append(node)
    gids = sorted(by_group)

    flows = []
    payloads = {}
    index = 0
    for ga, gb in itertools.permutations(gids, 2):
        src = by_group[ga][0]
        dst = by_group[gb][-1]
        if src == dst:
            continue
        payload = b"xg-%03d" % index
        assert system.send(src, dst, payload)
        flows.append((src, dst))
        payloads.setdefault(dst, []).append(payload)
        index += 1
    system.run(15.0)
    return system, nodes, flows, payloads


class TestCrossGroupMatrix:
    def test_every_flow_delivered_exactly_once(self, stressed_system):
        system, _nodes, _flows, payloads = stressed_system
        for dst, expected in payloads.items():
            assert sorted(system.delivered_messages(dst)) == sorted(expected)

    def test_no_evictions(self, stressed_system):
        system, _nodes, _flows, _payloads = stressed_system
        assert system.evicted == {}

    def test_channels_were_used(self, stressed_system):
        system, _nodes, flows, _payloads = stressed_system
        assert system.stats.value("channel_broadcasts") >= len(flows)

    def test_group_invariants_hold_after_stress(self, stressed_system):
        system, _nodes, _flows, _payloads = stressed_system
        system.directory.check_invariants()

    def test_latencies_recorded_for_all_flows(self, stressed_system):
        system, _nodes, flows, _payloads = stressed_system
        assert len(system.latency_meter) == len(flows)
        assert system.latency_meter.percentile(95) < 5.0
