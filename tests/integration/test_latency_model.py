"""The queueing latency model against packet-level measurements."""

import pytest

from repro.analysis.queueing import LatencyModel, predicted_latency
from repro.experiments.latency import measure_latency


class TestModelForm:
    def test_linear_in_hops(self):
        base = predicted_latency(1, 0.05, 12, 2048)
        doubled = predicted_latency(3, 0.05, 12, 2048)
        assert doubled == pytest.approx(2 * base)

    def test_dominated_by_slot_wait_on_fast_links(self):
        model = LatencyModel(2, 0.05, 12, 2048, 1e9)
        assert model.dissemination_time < 0.01 * model.per_hop_slot_wait * model.hops

    def test_slow_links_add_dissemination(self):
        fast = predicted_latency(2, 0.05, 12, 2048, link_bps=1e9)
        slow = predicted_latency(2, 0.05, 12, 2048, link_bps=2e6)
        assert slow > fast

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_latency(0, 0.05, 12)
        with pytest.raises(ValueError):
            predicted_latency(1, 0.0, 12)


class TestModelVsMeasurement:
    @pytest.mark.parametrize("num_relays", [1, 2, 3])
    def test_measured_mean_within_35_percent(self, num_relays):
        measured = measure_latency(
            num_relays, population=10, messages=12, seed=77, send_interval=0.05
        )
        predicted = predicted_latency(num_relays, 0.05, 10, 2048)
        assert measured.mean == pytest.approx(predicted, rel=0.35)
