"""Integration test: the full protocol on the *real* DH crypto backend.

Everything else in the suite runs the fast simulated sealed boxes; this
test proves the protocol code is genuinely backend-agnostic by running
an end-to-end delivery with ElGamal-style hybrid sealing (512-bit test
group — small for speed, structurally identical to the 2048-bit one).
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


@pytest.fixture(scope="module")
def dh_system():
    config = RacConfig.small(
        key_backend="dh",
        send_interval=0.1,  # fewer broadcasts: every peel is a modexp
        relay_timeout=2.0,
        predecessor_timeout=1.0,
        rate_window=2.0,
        blacklist_period=0.0,
    )
    system = RacSystem(config, seed=141)
    nodes = system.bootstrap(6)
    system.run(1.0)
    return system, nodes


class TestRealCrypto:
    def test_end_to_end_delivery(self, dh_system):
        system, nodes = dh_system
        assert system.send(nodes[0], nodes[3], b"sealed with real DH")
        system.run(5.0)
        assert system.delivered_messages(nodes[3]) == [b"sealed with real DH"]

    def test_no_false_verdicts(self, dh_system):
        system, _nodes = dh_system
        assert system.evicted == {}

    def test_keys_are_dh_backend(self, dh_system):
        system, nodes = dh_system
        node = system.nodes[nodes[0]]
        assert node.id_keypair.backend == "dh"
        assert node.pseudonym_keypair.backend == "dh"
        assert system.pseudonym_keys[nodes[0]].dh_value is not None
