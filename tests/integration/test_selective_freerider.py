"""Integration test: channel-selective freeriding is caught too.

Check 2 covers predecessors "in the different rings of channels and
group": a node that behaves perfectly on group rings but drops channel
forwards is accused by its channel successors and evicted.
"""

import itertools

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.selective import SelectiveDropper


def build(seed):
    config = RacConfig.small(group_min=4, group_max=10, predecessor_timeout=0.8)
    system = RacSystem(config, seed=seed)
    nodes = system.bootstrap(24)
    assert len(system.directory.groups) >= 2
    system.run(1.5)
    return system, nodes


def cross_pairs(system, nodes):
    gids = {n: system.group_of(n) for n in nodes}
    return [(a, b) for a, b in itertools.permutations(nodes, 2) if gids[a] != gids[b]]


class TestSelectiveDropper:
    def test_validation(self):
        with pytest.raises(ValueError):
            SelectiveDropper("universe")

    def test_channel_dropper_detected_by_channel_successors(self):
        # Rebuild the same population with the dropper installed on one
        # node, then push cross-group traffic so channels stay busy.
        config = RacConfig.small(group_min=4, group_max=10, predecessor_timeout=0.8)
        dropper = SelectiveDropper("channel")
        system = RacSystem(config, seed=111)
        nodes = system.bootstrap(24, behaviors={0: dropper})
        deviant = nodes[0]
        system.run(1.5)
        pairs = cross_pairs(system, nodes)
        # Focus traffic on the deviant's channels: destinations in other
        # groups, senders in the deviant's group (so the deviant sits on
        # the channel rings).
        deviant_gid = system.group_of(deviant)
        relevant = [
            (a, b)
            for a, b in pairs
            if system.group_of(a) == deviant_gid and a != deviant
        ]
        step = 0
        while system.now < 25.0 and deviant not in system.evicted:
            for a, b in relevant[:6]:
                system.send(a, b, b"x-group %d" % step)
            system.run(0.8)
            step += 1
        assert dropper.drops > 0, "the deviant never saw channel traffic"
        assert deviant in system.evicted
        assert [n for n in system.evicted if n != deviant] == []

    def test_group_traffic_alone_does_not_expose_it(self):
        # Without channel traffic the selective dropper is
        # indistinguishable from honest — the deviation only manifests
        # where it deviates.
        config = RacConfig.small(predecessor_timeout=0.8)
        dropper = SelectiveDropper("channel")
        system = RacSystem(config, seed=112)
        nodes = system.bootstrap(12, behaviors={0: dropper})
        system.run(6.0)
        assert system.evicted == {}
        assert dropper.forwards > 0
