"""Fixed-seed determinism pins for the performance layer.

The crypto and hot-path optimisations (bulk keystream, cached key
derivations, fixed-base exponentiation, KEM cache, peel dedup, calendar
compaction) must not change a single wire byte or reorder a single
event. These tests pin a SHA-256 fingerprint over

* every ``Broadcast`` wire blob, in unicast order,
* every control-plane payload,
* the full protocol trace (time, kind, node, detail),
* every node's delivered payloads, and
* the final clock / event count,

for a fixed-seed run of each key backend. The expected digests were
recorded against the seed implementation (pre-optimisation); a digest
change means an optimisation altered observable behaviour and is a bug,
not a baseline to re-record casually.
"""

from __future__ import annotations

import hashlib

from repro.core.config import RacConfig
from repro.core.messages import Broadcast
from repro.core.system import RacSystem

# Digests recorded from the seed (pre-optimisation) implementation.
EXPECTED_SIM = "e13a6c058436f290cbefba26394a859a2d735cf58e527caa51ff6eafaf30823b"
EXPECTED_DH = "28466e14f00a16163af150e081ebe9a0764b00a39136740b19df71fb08d6192a"


class _RecordingSystem(RacSystem):
    """RacSystem that folds every unicast payload into a running hash."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.hasher = hashlib.sha256()

    def unicast(self, src, dst, payload, size_bytes):
        self.hasher.update(f"u|{src}|{dst}|{size_bytes}|".encode())
        if isinstance(payload, Broadcast):
            self.hasher.update(
                f"b|{payload.domain!r}|{payload.msg_id}|{payload.ring_index}|".encode()
            )
            self.hasher.update(payload.wire)
        else:
            self.hasher.update(repr(payload).encode())
        super().unicast(src, dst, payload, size_bytes)


def run_fingerprint(backend: str, topology=None) -> str:
    config = RacConfig.small(trace=True, key_backend=backend)
    system = _RecordingSystem(config, seed=1234, topology=topology)
    count = 10 if backend == "sim" else 6
    nodes = system.bootstrap(count)
    system.run(1.0)
    system.send(nodes[0], nodes[count // 2], b"determinism ping")
    system.send(nodes[1], nodes[count - 1], b"determinism pong")
    system.run(4.0)

    hasher = system.hasher
    for event in system.tracer:
        hasher.update(
            f"t|{event.time!r}|{event.kind}|{event.node}|{sorted(event.detail.items())!r}|".encode()
        )
    for node_id in sorted(system.nodes):
        for payload in system.nodes[node_id].delivered:
            hasher.update(f"d|{node_id}|".encode())
            hasher.update(payload)
    hasher.update(f"end|{system.now!r}|{system.sim.events_processed}".encode())
    return hasher.hexdigest()


def test_sim_backend_run_is_byte_identical_to_seed():
    assert run_fingerprint("sim") == EXPECTED_SIM


def test_dh_backend_run_is_byte_identical_to_seed():
    assert run_fingerprint("dh") == EXPECTED_DH


def test_fingerprint_is_stable_across_runs():
    assert run_fingerprint("sim") == run_fingerprint("sim")


def test_lan_topology_preset_is_byte_identical_to_bare_star():
    """The ``lan`` preset (zero delays, inherited bandwidth) must not
    move a single wire byte or event relative to running with no
    topology at all — the pinned seed digest doubles as the gate."""
    from repro.topo.model import lan

    assert run_fingerprint("sim", topology=lan(10)) == EXPECTED_SIM


# ---------------------------------------------------------------------------
# snapshot/restore determinism (the checkpoint-resume correctness core)
# ---------------------------------------------------------------------------


def _traffic_system(seed: int = 4242) -> RacSystem:
    system = RacSystem(RacConfig.small(), seed=seed)
    nodes = system.bootstrap(8)
    for index, src in enumerate(nodes):
        system.send(src, nodes[(index + 1) % len(nodes)], f"det/{index}".encode())
    return system


def _run_summary(system: RacSystem) -> bytes:
    """Byte-level digest of everything a resumed run could get wrong."""
    hasher = hashlib.sha256()
    hasher.update(repr(sorted(system.stats_report().items())).encode())
    for node_id in sorted(system.nodes):
        for payload in system.nodes[node_id].delivered:
            hasher.update(f"d|{node_id}|".encode())
            hasher.update(payload)
    hasher.update(f"end|{system.now!r}|{system.sim.events_processed}".encode())
    return hasher.digest()


def _restored_summary_in_child(blob: bytes, remaining: float, queue) -> None:
    # Module-level so multiprocessing can import it in a fresh process.
    from repro.simnet.snapshot import restore_system

    system = restore_system(blob)
    system.run(remaining)
    queue.put(_run_summary(system))


def test_snapshot_restore_replays_byte_identically():
    """Snapshot mid-run, restore (same and fresh process), continue:
    stats report, deliveries, clock and event count must byte-match an
    uninterrupted run — and snapshotting must not perturb the donor."""
    import multiprocessing

    from repro.simnet.snapshot import restore_system, snapshot_system

    uninterrupted = _traffic_system()
    uninterrupted.run(4.0)
    expected = _run_summary(uninterrupted)

    donor = _traffic_system()
    donor.run(1.5)
    blob = snapshot_system(donor, verify=True)

    # The donor, continued after being snapshotted, is unperturbed.
    donor.run(2.5)
    assert _run_summary(donor) == expected

    # Same-process restore replays identically.
    restored = restore_system(blob)
    restored.run(2.5)
    assert _run_summary(restored) == expected

    # Fresh-process restore (what a resumed sweep worker actually does).
    context = multiprocessing.get_context()
    queue = context.Queue()
    child = context.Process(target=_restored_summary_in_child, args=(blob, 2.5, queue))
    child.start()
    child_summary = queue.get(timeout=120)
    child.join(timeout=30)
    assert child.exitcode == 0
    assert child_summary == expected
