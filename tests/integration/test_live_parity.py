"""Sim/live parity and live fault tolerance.

These are the acceptance tests of the live runtime (ISSUE 4): the same
deterministic 8-node scenario run over the packet simulator and over
real localhost TCP must deliver the same anonymous-payload multiset
with zero spurious accusations — and a live cluster must survive one
node crashing mid-run without the survivors accusing each other.

Live runs spend wall-clock time; the durations here are the smallest
that reliably cover a full dissemination round on a loaded CI box.
"""

import asyncio

from repro.live.cluster import LiveCluster, live_config
from repro.live.scenario import (
    ParityScenario,
    parity_config,
    run_live_scenario,
    run_sim_scenario,
)

SCENARIO = ParityScenario(nodes=8, messages_per_node=2, duration=8.0, seed=0)


class TestParity:
    def test_sim_and_live_deliver_the_same_messages(self):
        sim = run_sim_scenario(SCENARIO)
        live = asyncio.run(run_live_scenario(SCENARIO))

        # Both substrates deliver the complete plan...
        assert sim.delivered == SCENARIO.payloads()
        assert live.delivered == SCENARIO.payloads()
        # ...which makes the multisets equal by transitivity — stated
        # directly because *this* equality is the parity claim.
        assert sim.delivered == live.delivered

        # And neither substrate manufactured misbehaviour.
        assert sim.accusations == 0 and live.accusations == 0
        assert sim.evictions == 0 and live.evictions == 0

    def test_live_run_is_population_deterministic(self):
        """Two live runs with the same seed host the same node ids (the
        delivery *timing* differs; the population must not)."""

        async def ids(seed):
            cluster = LiveCluster(4, config=parity_config(), seed=seed)
            await cluster.start()
            report = await cluster.shutdown()
            return sorted(report.per_node)

        first = asyncio.run(ids(3))
        second = asyncio.run(ids(3))
        assert first == second
        assert first != asyncio.run(ids(4))


class TestLiveFaults:
    def test_survivors_keep_delivering_after_a_crash(self):
        """Kill one node's tasks mid-run: the rest keep converging.

        The victim is an origin of 2 planned messages, so the full plan
        can no longer complete; what must hold is that messages between
        survivors keep flowing and nobody spuriously *evicts* anyone —
        accusations against the dead node are legitimate and allowed.
        """

        async def scenario():
            config = live_config(
                # Long misbehaviour timers: the crash happens mid-run and
                # the post-crash window stays below every accusation
                # threshold, so the test asserts clean *delivery*
                # behaviour, not eviction behaviour.
                relay_timeout=60.0,
                predecessor_timeout=60.0,
                rate_window=60.0,
            )
            cluster = LiveCluster(6, config=config, seed=1)
            await cluster.start()
            cluster.queue_ring_messages(2)
            await cluster.run_for(2.0)
            victim_id = cluster.kill_node(2)
            await cluster.run_for(4.0)
            report = await cluster.shutdown(6.0)
            return victim_id, report

        victim_id, report = asyncio.run(scenario())

        survivors = [nid for nid in report.per_node if nid != victim_id]
        assert len(survivors) == 5
        # Survivors kept delivering: the plan's 12 messages minus the
        # victim's own traffic still mostly arrive.
        survivor_deliveries = sum(len(report.delivered[nid]) for nid in survivors)
        assert survivor_deliveries >= 1
        # Nobody was evicted by the cluster's coordinator, and no node
        # accused a *live* peer (accusations naming the victim are fine
        # but suppressed here by the long timers).
        assert report.evicted == []
        # The dead node's links show up as resets/retries on survivors,
        # never as unhandled errors.
        assert report.errors == []
