"""Integration tests: colluding active opponents (§V-A2 case 1).

A fraction f of the population drops every onion it should relay,
trying to force senders onto fresh paths. The protocol's promises:

* each opponent burns a given sender at most once (the fN bound);
* retransmission on fresh paths eventually delivers;
* opponents accumulate relay-blacklist votes and are evicted.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.adversary import PathDropOpponent


def build(population=15, opponents=3, seed=101):
    config = RacConfig.small(
        relay_timeout=0.8,
        blacklist_period=1.5,
        assumed_opponent_fraction=0.25,
    )
    behaviors = {i: PathDropOpponent() for i in range(opponents)}
    system = RacSystem(config, seed=seed)
    nodes = system.bootstrap(population, behaviors=behaviors)
    return system, nodes[:opponents], nodes[opponents:]


class TestColludingPathDroppers:
    def test_messages_deliver_despite_20_percent_droppers(self):
        system, opponents, honest = build()
        system.run(1.2)
        for i, src in enumerate(honest):
            system.send(src, honest[(i + 1) % len(honest)], b"through the storm %d" % i)
        system.run(12.0)
        delivered = sum(len(system.delivered_messages(n)) for n in honest)
        assert delivered == len(honest)

    def test_retransmissions_happen_and_are_bounded(self):
        system, opponents, honest = build(seed=102)
        system.run(1.2)
        for step in range(6):
            for i, src in enumerate(honest):
                system.send(src, honest[(i + 1) % len(honest)], b"s%d-%d" % (step, i))
            system.run(1.0)
        system.run(6.0)
        retransmits = system.stats.value("send_retransmitted")
        blacklistings = system.stats.value("relay_blacklisted")
        assert retransmits >= 1
        # The fN bound: each (sender, opponent) pair burns at most once,
        # so sender-side blacklist entries cannot exceed
        # honest-senders x opponents.
        assert blacklistings <= len(honest) * len(opponents)

    def test_opponents_get_evicted_by_relay_votes(self):
        system, opponents, honest = build(seed=103)
        system.run(1.2)
        step = 0
        while system.now < 40.0 and not all(o in system.evicted for o in opponents):
            for i, src in enumerate(honest):
                system.send(src, honest[(i + 1) % len(honest)], b"probe-%d" % step)
            system.run(0.8)
            step += 1
        evicted_opponents = [o for o in opponents if o in system.evicted]
        assert len(evicted_opponents) >= 2  # most of the cartel falls
        assert all(n in opponents for n in system.evicted)  # no honest casualty

    def test_abandon_after_retry_cap(self):
        # With every candidate relay dropping, retries run out and the
        # send is abandoned (counted, not silently lost).
        config = RacConfig.small(relay_timeout=0.6, max_send_retries=2, blacklist_period=0.0)
        behaviors = {i: PathDropOpponent() for i in range(1, 6)}
        system = RacSystem(config, seed=104)
        nodes = system.bootstrap(6, behaviors=behaviors)
        sender = nodes[0]
        system.run(1.2)
        system.send(sender, nodes[1], b"doomed")
        system.run(10.0)
        assert system.stats.value("send_abandoned") >= 1
