"""The campaign matrix end to end: pool, crash, resume, frontier.

The acceptance path of the campaign subsystem: a mini
strategies × faults × loss matrix runs through the real worker pool
with an injected worker crash, survives it with exactly-once results,
and folds into a frontier whose baseline is sound — zero honest
evictions, every planted detectable misbehaver evicted.
"""

import json
import os

from repro.campaign import (
    CampaignSpec,
    build_frontier,
    campaign_report,
    campaign_status,
    run_campaign,
)
from repro.orchestrator import ResultStore
from repro.orchestrator.pool import STORE_NAME


def _mini_spec():
    # 2 detectable strategies x (baseline + faults) x one lossy point.
    return CampaignSpec(
        strategies=("forward-dropper", "replay-attacker"),
        plans=("none", "smoke"),
        loss_points=(0.05,),
        group_sizes=(10,),
        seeds=(0,),
        horizon=12.0,
    )


class TestCampaignThroughThePool:
    def test_crash_resume_and_sound_frontier(self, tmp_path):
        spec = _mini_spec()
        run_dir = str(tmp_path / "campaign")

        status = run_campaign(spec, run_dir, workers=2, inject_crash=1)
        assert status.done and status.failed == 0
        assert status.total == len(spec) == 4
        assert status.retries >= 1  # the injected crash really happened

        # Exactly-once: every cell has one ok record, none duplicated,
        # and the crashed cell's record carries its extra attempt.
        store_path = os.path.join(run_dir, STORE_NAME)
        with open(store_path, encoding="utf-8") as fh:
            bodies = [json.loads(line) for line in fh if line.strip()]
        ids = [b["cell_id"] for b in bodies]
        assert len(ids) == len(set(ids)) == 4
        assert all(b["status"] == "ok" for b in bodies)
        assert max(b["attempts"] for b in bodies) >= 2

        # Re-running the finished campaign is a no-op (resume semantics).
        again = run_campaign(spec, run_dir, workers=2)
        assert again.done and again.retries == 0
        with open(store_path, encoding="utf-8") as fh:
            assert sum(1 for line in fh if line.strip()) == 4

        # The frontier: baseline sound, both misbehavers convicted
        # everywhere, zero honest evictions anywhere.
        report = build_frontier(ResultStore(store_path))
        assert report.baseline_ok
        assert sum(p.cells for p in report.points) == 4
        assert all(p.honest_evictions == 0 for p in report.points)
        assert all(p.missed_detections == 0 for p in report.points)
        assert all(p.detected == p.cells for p in report.points)
        rendered = report.render()
        assert "SOUND" in rendered and "UNSOUND" not in rendered

        # The runner's read-back entry points see the same state.
        spec_back, status_back = campaign_status(run_dir)
        assert spec_back == spec
        assert status_back.done
        _, report_back = campaign_report(run_dir)
        assert report_back.baseline_ok

    def test_interrupted_campaign_resumes_exactly_once(self, tmp_path):
        """A campaign whose store already holds some cells only runs
        the missing ones (the orchestrator-killed-midway scenario)."""
        spec = _mini_spec()
        warm = str(tmp_path / "warm")
        full_status = run_campaign(spec, warm, workers=2)
        assert full_status.done

        cold = str(tmp_path / "cold")
        os.makedirs(cold, exist_ok=True)
        # Seed the "interrupted" store with half the finished records.
        with open(os.path.join(warm, STORE_NAME), encoding="utf-8") as fh:
            lines = [line for line in fh if line.strip()]
        with open(os.path.join(cold, STORE_NAME), "w", encoding="utf-8") as fh:
            fh.writelines(lines[:2])

        status = run_campaign(spec, cold, workers=2)
        assert status.done and status.failed == 0
        with open(os.path.join(cold, STORE_NAME), encoding="utf-8") as fh:
            bodies = [json.loads(line) for line in fh if line.strip()]
        # 2 seeded + 2 freshly run, no re-runs of the seeded pair.
        assert len(bodies) == 4
        assert len({b["cell_id"] for b in bodies}) == 4
        # Deterministic workloads: the resumed half matches the warm run.
        warm_metrics = {
            json.loads(line)["cell_id"]: json.loads(line)["metrics"] for line in lines
        }
        for body in bodies:
            assert body["metrics"] == warm_metrics[body["cell_id"]]
