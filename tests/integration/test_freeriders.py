"""Integration tests: freerider strategies against a live population.

These are the experimental counterpart of the Section V-B lemmas: each
detectable deviation must lead to eviction of the deviator — and never
of an honest bystander.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.strategies import (
    ForwardDropper,
    FullFreerider,
    LyingShuffler,
    NoNoise,
    SilentRelay,
)


def config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=0.8,
        predecessor_timeout=0.5,
        rate_window=1.0,
        blacklist_period=1.0,
        puzzle_bits=2,
        assumed_opponent_fraction=0.1,
    )
    base.update(overrides)
    return RacConfig(**base)


def run_with_traffic(system, honest, until, stop_when=None):
    """Ring of flows among honest nodes, advancing in 0.6 s slices."""
    step = 0
    while system.now < until:
        for i, src in enumerate(honest):
            system.send(src, honest[(i + 1) % len(honest)], b"flow-%d" % step)
        system.run(0.6)
        step += 1
        if stop_when is not None and stop_when():
            return


class TestForwardDropper:
    def test_detected_and_evicted_quickly(self):
        system = RacSystem(config(), seed=3)
        nodes = system.bootstrap(14, behaviors={3: ForwardDropper(1.0)})
        freerider = nodes[3]
        system.run(4.0)
        assert freerider in system.evicted
        assert system.evicted[freerider]["kind"] == "predecessor"
        assert [n for n in system.evicted if n != freerider] == []

    def test_probabilistic_dropper_also_caught(self):
        system = RacSystem(config(), seed=4)
        nodes = system.bootstrap(14, behaviors={2: ForwardDropper(0.5, seed=9)})
        freerider = nodes[2]
        system.run(10.0)
        assert freerider in system.evicted
        assert [n for n in system.evicted if n != freerider] == []


class TestSilentRelay:
    def test_evicted_via_anonymous_shuffle(self):
        system = RacSystem(config(), seed=5)
        nodes = system.bootstrap(14, behaviors={0: SilentRelay()})
        silent = nodes[0]
        honest = [n for n in nodes if n != silent]
        system.run(1.2)
        run_with_traffic(system, honest, until=30.0, stop_when=lambda: silent in system.evicted)
        assert silent in system.evicted
        assert system.evicted[silent]["kind"] == "relay"
        assert [n for n in system.evicted if n != silent] == []

    def test_senders_blacklist_before_eviction(self):
        system = RacSystem(config(blacklist_period=30.0), seed=6)
        nodes = system.bootstrap(14, behaviors={0: SilentRelay()})
        silent = nodes[0]
        honest = [n for n in nodes if n != silent]
        system.run(1.2)
        run_with_traffic(system, honest, until=8.0)
        # Without shuffle rounds yet, eviction cannot happen...
        assert silent not in system.evicted
        # ...but individual senders already blacklisted the relay.
        blacklisters = [
            n for n in honest if silent in system.nodes[n].relays_blacklist
        ]
        assert blacklisters


class TestNoNoise:
    def test_forwarding_no_noise_freerider_evades_detection(self):
        """Reproduction finding (documented in DESIGN.md): a freerider
        that skips noise but keeps forwarding cannot be attributed by
        stream statistics — everyone forwards everything, so its
        stream differs from an honest one by a single first-copy per
        interval, which drowns in the steal-share variance. Lemma 6's
        detection claim only holds for *silent* streams. The deviation
        is also nearly profitless: noise fills only otherwise-idle
        slots."""
        system = RacSystem(config(), seed=7)
        nodes = system.bootstrap(12, behaviors={1: NoNoise()})
        lazy = nodes[1]
        system.run(6.0)
        assert lazy not in system.evicted
        assert system.evicted == {}

    def test_fully_silent_node_is_accused_and_evicted(self):
        """The case Lemma 6 *does* cover: a node whose stream goes
        silent (crash or total freeriding) trips rate-low and the
        completeness check at every successor."""
        system = RacSystem(config(), seed=77)
        nodes = system.bootstrap(12)
        silent = nodes[2]
        system.run(2.0)
        system.nodes[silent].stop()  # crash: no forwards, no noise
        system.run(5.0)
        assert silent in system.evicted
        assert [n for n in system.evicted if n != silent] == []


class TestFullFreerider:
    def test_evicted(self):
        system = RacSystem(config(), seed=8)
        nodes = system.bootstrap(14, behaviors={4: FullFreerider()})
        freerider = nodes[4]
        system.run(6.0)
        assert freerider in system.evicted
        assert [n for n in system.evicted if n != freerider] == []


class TestUndetectableDeviations:
    def test_lying_shuffler_gains_nothing_and_survives(self):
        # Lemma 4: lying in the shuffle is not *detectable* (fixed-size
        # messages), and the analysis shows it is not *profitable*; the
        # simulation confirms the liar is not evicted (no false
        # positives from the mechanism).
        system = RacSystem(config(), seed=9)
        nodes = system.bootstrap(12, behaviors={5: LyingShuffler()})
        system.run(6.0)
        assert system.evicted == {}

    def test_delivery_unharmed_by_single_freerider(self):
        # Freeriding must not break the service for the honest nodes:
        # after the dropper's eviction, messages still flow.
        system = RacSystem(config(), seed=10)
        nodes = system.bootstrap(14, behaviors={3: ForwardDropper(1.0)})
        freerider = nodes[3]
        honest = [n for n in nodes if n != freerider]
        system.run(5.0)
        assert freerider in system.evicted
        assert system.send(honest[0], honest[5], b"after the purge")
        system.run(4.0)
        assert system.delivered_messages(honest[5]) == [b"after the purge"]
