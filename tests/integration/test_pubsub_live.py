"""Live pub/sub over real TCP: dynamic joins, splits, dissolves.

These are the acceptance tests of the service layer on the live
runtime. The first proves the §IV-C admission path end to end — a
puzzle ticket solved client-side mid-run, verified at every replica,
the joiner subscribing and *receiving* a publish. The second replays
the full scripted bench (join → split, unsubscribe, leaves → dissolve)
and holds it to the CI gate: at least one live split AND one live
dissolve, zero honest evictions, delivery parity, invariants green.

Live runs spend wall-clock time; the pub/sub config keeps misbehaviour
timers far beyond the scenario horizon so honest churn can never read
as freeriding.
"""

import asyncio

import pytest

from repro.pubsub import PubSubApiError, PubSubClient, PubSubService, pubsub_config
from repro.pubsub.admission import AdmissionTicket, solve_ticket
from repro.pubsub.bench import check_report, run_bench


async def _wait_for_topic(client, topic, count, timeout=12.0):
    """Poll the delivery ledger until ``topic`` has ``count`` deliveries."""
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        delivered = await client.delivered()
        if delivered.get(topic, 0) >= count:
            return delivered
        if asyncio.get_running_loop().time() >= deadline:
            return delivered
        await asyncio.sleep(0.25)


class TestLiveJoinAfterStart:
    def test_ticketed_join_subscribes_and_receives(self):
        asyncio.run(self._run())

    async def _run(self):
        config = pubsub_config()
        service = PubSubService(3, config, seed=11)
        await service.start()
        port = await service.serve()
        client = await PubSubClient("127.0.0.1", port).connect()
        try:
            # Past the 2T relay quarantine of the bootstrap cohort.
            await asyncio.sleep(2 * config.join_settle_time + 0.5)

            # A forged ticket is rejected at the door, changing nothing.
            good = solve_ticket(config, base=777_777)
            forged = AdmissionTicket(
                base=good.base, vector=good.vector + 1, node_id=good.node_id
            )
            with pytest.raises(PubSubApiError, match="puzzle"):
                await client.join(forged)
            assert len(service.cluster.live_nodes()) == 3

            # The genuine ticket admits the node at every replica...
            joined = await client.join(good)
            joiner = int(joined["index"])
            assert len(service.cluster.live_nodes()) == 4
            assert int(joined["node_id"], 16) == good.node_id

            # ...and the joiner immediately participates as a subscriber.
            assert await client.subscribe(joiner, "fresh")
            await client.publish(0, "fresh", b"welcome aboard")
            delivered = await _wait_for_topic(client, "fresh", 1)
            assert delivered.get("fresh", 0) >= 1
        finally:
            await client.close()
        report = await service.stop(duration=2.0)
        assert report.joins == 1
        assert not report.live.evicted
        assert report.invariants.ok, report.invariants.render()
        assert report.parity.ok, report.parity.missing


class TestLiveBenchScenario:
    def test_bench_passes_the_ci_gate(self):
        report = asyncio.run(run_bench(nodes=6, seed=0, settle=2.5))
        ok, failures = check_report(report)
        assert ok, "; ".join(failures)
        # The report is explicit about what the gate verified.
        assert report.splits >= 1
        assert report.dissolves >= 1
        assert report.joins == 1 and report.leaves == 2
        assert report.delivered_by_topic.get("alpha", 0) >= 2
