"""Sharded-vs-monolithic equivalence and merge-layer guarantees.

The sharded simulator's contract (DESIGN.md §14): same spec, same
seed — the delivered-payload multiset and the eviction set match the
monolithic run exactly; the cross-shard schedule (barrier contents and
per-shard fingerprints) is byte-identical across repeat runs; and an
eviction exported by one shard is applied in every other shard within
one epoch of the barrier that carried it.
"""

import json
import os

import pytest

from repro.groups import plan_bundles, snapshot_groups
from repro.orchestrator.sharded import run_sharded, verify_sharded
from repro.simnet.shard import ScaleSpec, plan_population, run_monolithic


SPEC = ScaleSpec(nodes=24, num_shards=2, seed=3, horizon=3.0)
EVICT_SPEC = ScaleSpec(
    nodes=24, num_shards=2, seed=3, horizon=6.0, deviants={1: "silent-relay"}
)


class TestOutcomeEquivalence:
    def test_sharded_matches_monolithic(self, tmp_path):
        outcome = run_sharded(SPEC, str(tmp_path / "run"), serial=True)
        report = verify_sharded(outcome)
        assert report.equivalent, report.render()
        assert len(outcome.delivered) > 0

    def test_eviction_equivalence(self, tmp_path):
        outcome = run_sharded(EVICT_SPEC, str(tmp_path / "run"), serial=True)
        report = verify_sharded(outcome)
        assert report.equivalent, report.render()
        assert len(outcome.evicted) == 1
        (record,) = outcome.evicted.values()
        assert record["kind"] == "relay"
        mono = run_monolithic(EVICT_SPEC)
        assert set(int(k) for k in outcome.evicted) == set(int(k) for k in mono.evicted)


class TestCoalitionEquivalence:
    # A shield coalition spanning shard bundles: the coordinator is
    # rebuilt per process from the ScaleSpec planning data, so the
    # sharded eviction set must match the monolithic one exactly
    # (DESIGN.md §17). Deliveries are compared too — no plan, so the
    # full multiset contract applies.
    COALITION_SPEC = ScaleSpec(
        nodes=64,
        num_shards=4,
        seed=3,
        horizon=8.0,
        coalition={"mode": "shield", "members": [4, 20, 36, 52]},
    )

    def test_cross_bundle_coalition_eviction_equivalence(self, tmp_path):
        spec = self.COALITION_SPEC
        outcome = run_sharded(spec, str(tmp_path / "run"), serial=True)
        report = verify_sharded(outcome)
        assert report.equivalent, report.render()

        # The planted members must actually span bundles, or the test
        # would not exercise the cross-shard consistency contract.
        _config, materials, directory = plan_population(spec)
        member_ids = [materials[i - 1].node_id for i in (4, 20, 36, 52)]
        gid_of = {m.node_id: directory.group_for_id(m.node_id).gid for m in materials}
        bundles = plan_bundles(snapshot_groups(directory), spec.num_shards)
        bundle_of = {
            g.gid: shard for shard, bundle in enumerate(bundles) for g in bundle
        }
        member_bundles = {bundle_of[gid_of[nid]] for nid in member_ids}
        assert len(member_bundles) >= 2

        # Every eviction is a coalition member, and the monolithic
        # engine convicts the identical set.
        mono = run_monolithic(spec)
        sharded_evicted = {int(k) for k in outcome.evicted}
        assert sharded_evicted == {int(k) for k in mono.evicted}
        assert sharded_evicted and sharded_evicted <= set(member_ids)


class TestBarrierDeterminism:
    def test_repeat_runs_are_byte_identical(self, tmp_path):
        first = run_sharded(SPEC, str(tmp_path / "a"), serial=True)
        second = run_sharded(SPEC, str(tmp_path / "b"), serial=True)
        assert first.shard_fingerprints == second.shard_fingerprints
        assert first.merged_fingerprint == second.merged_fingerprint
        # The barrier files themselves — the cross-shard schedule — must
        # be byte-identical, not merely semantically equal.
        for epoch in range(SPEC.epoch_count):
            name = os.path.join("barriers", f"epoch{epoch:03d}.json")
            a = open(tmp_path / "a" / name, "rb").read()
            b = open(tmp_path / "b" / name, "rb").read()
            assert a == b

    def test_different_seed_diverges(self, tmp_path):
        other = ScaleSpec(nodes=24, num_shards=2, seed=4, horizon=3.0)
        first = run_sharded(SPEC, str(tmp_path / "a"), serial=True)
        second = run_sharded(other, str(tmp_path / "b"), serial=True)
        assert first.merged_fingerprint != second.merged_fingerprint


class TestBlacklistDissemination:
    def test_eviction_reaches_every_shard_within_one_epoch(self, tmp_path):
        run_dir = tmp_path / "run"
        outcome = run_sharded(EVICT_SPEC, str(run_dir), serial=True)
        (evicted_id,) = (int(k) for k in outcome.evicted)
        record = outcome.evicted[str(evicted_id)]

        # The eviction must appear in exactly one shard's export file
        # for the epoch that contains its timestamp...
        evict_epoch = min(
            e for e in range(EVICT_SPEC.epoch_count)
            if record["at"] <= EVICT_SPEC.epoch_end(e)
        )
        exporters = []
        for shard in range(EVICT_SPEC.num_shards):
            body = json.load(
                open(run_dir / "exports" / f"shard{shard:03d}.epoch{evict_epoch:03d}.json")
            )
            if any(r["node"] == evicted_id for r in body["exports"]):
                exporters.append(shard)
        assert len(exporters) == 1

        # ...and in the *next* epoch's barrier, after which every other
        # shard has applied it (foreign_evictions_applied counts them).
        barrier = json.load(
            open(run_dir / "barriers" / f"epoch{evict_epoch + 1:03d}.json")
        )
        assert any(r["node"] == evicted_id for r in barrier["records"])
        applied = sum(
            summary["stats"].get("foreign_evictions_applied", 0)
            for summary in outcome.per_shard
        )
        assert applied == EVICT_SPEC.num_shards - 1
