"""Chaos soak test: randomized churn + adversaries + traffic, invariants checked.

A seeded scenario generator drives a population through random joins,
voluntary leaves, crashes, freerider injections and continuous traffic.
After every phase the global invariants must hold:

* no honest *live* node is ever evicted;
* every eviction names a crashed node or an injected deviant;
* the group directory's interval partition stays consistent;
* traffic between live honest nodes keeps delivering.
"""

import random

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem
from repro.freeride.strategies import ForwardDropper, SilentRelay


class ChaosScenario:
    def __init__(self, seed: int, loss_rate: float = 0.0) -> None:
        self.rng = random.Random(seed)
        timers = dict(relay_timeout=1.2, predecessor_timeout=0.7, rate_window=1.5)
        if loss_rate:
            # Loss delays deliveries by up to a few RTOs; the checks
            # must leave the ARQ that recovery budget (DESIGN.md
            # "Fault model") or loss reads as freeriding.
            timers = dict(relay_timeout=2.0, predecessor_timeout=1.2, rate_window=2.0)
        self.config = RacConfig.small(
            group_min=3,
            group_max=12,
            blacklist_period=1.5,
            join_settle_time=0.2,
            link_loss_rate=loss_rate,
            transport_rto_max=0.25,
            **timers,
        )
        self.system = RacSystem(self.config, seed=seed)
        self.deviants = set()
        self.crashed = set()
        self.departed = set()
        start = self.system.bootstrap(16)
        self.all_nodes = set(start)
        self.system.run(1.5)

    # -- actions -------------------------------------------------------------
    def honest_alive(self):
        return [
            n
            for n in self.system.active_node_ids()
            if n not in self.deviants and n not in self.crashed
        ]

    def act_join(self):
        behavior = None
        if self.rng.random() < 0.3:
            behavior = self.rng.choice([ForwardDropper(1.0, seed=1), SilentRelay()])
        node = self.system.join(behavior=behavior)
        self.all_nodes.add(node)
        if behavior is not None:
            self.deviants.add(node)

    def act_leave(self):
        candidates = self.honest_alive()
        if len(candidates) > 8:
            victim = self.rng.choice(candidates)
            self.system.leave(victim)
            self.departed.add(victim)

    def act_crash(self):
        candidates = self.honest_alive()
        if len(candidates) > 8:
            victim = self.rng.choice(candidates)
            self.system.nodes[victim].stop()
            self.crashed.add(victim)

    def act_traffic(self):
        alive = self.honest_alive()
        if len(alive) >= 2:
            src, dst = self.rng.sample(alive, 2)
            self.system.send(src, dst, b"chaos-%d" % self.rng.getrandbits(30))

    # -- invariants ------------------------------------------------------------
    def check_invariants(self):
        self.system.directory.check_invariants()
        for evicted in self.system.evicted:
            assert evicted in self.deviants or evicted in self.crashed, (
                f"honest live node {evicted} was evicted"
            )

    def run(self, steps: int = 25) -> None:
        actions = [self.act_join, self.act_leave, self.act_crash, self.act_traffic,
                   self.act_traffic, self.act_traffic]
        for _ in range(steps):
            self.rng.choice(actions)()
            self.system.run(self.rng.uniform(0.4, 1.0))
            self.check_invariants()
        self.system.run(5.0)
        self.check_invariants()


@pytest.mark.parametrize("seed", [161, 162, 163])
def test_chaos_scenarios(seed):
    scenario = ChaosScenario(seed)
    scenario.run(steps=25)
    # The system is still functional after the storm.
    alive = scenario.honest_alive()
    assert len(alive) >= 2
    src, dst = alive[0], alive[-1]
    assert scenario.system.send(src, dst, b"the dust settles")
    scenario.system.run(6.0)
    assert b"the dust settles" in scenario.system.delivered_messages(dst)
    # Injected deviants that saw traffic should mostly be gone; at
    # minimum, no honest live node ever was.
    scenario.check_invariants()


@pytest.mark.parametrize("seed", [171, 172])
def test_chaos_scenarios_on_lossy_network(seed):
    """The same storm, on 5%-lossy links: churn, crashes, freeriders
    AND packet loss — and still no honest live node is ever evicted."""
    scenario = ChaosScenario(seed, loss_rate=0.05)
    scenario.run(steps=20)
    # The system is still functional after the storm.
    alive = scenario.honest_alive()
    assert len(alive) >= 2
    src, dst = alive[0], alive[-1]
    assert scenario.system.send(src, dst, b"the dust settles")
    scenario.system.run(6.0)
    assert b"the dust settles" in scenario.system.delivered_messages(dst)
    # Injected deviants that saw traffic should mostly be gone; at
    # minimum, no honest live node ever was.
    scenario.check_invariants()
