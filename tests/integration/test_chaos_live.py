"""Chaos on the live runtime: partitions heal, crashed nodes rejoin.

These are the acceptance tests of the unified chaos layer on the real
TCP substrate: a scripted partition black-holes traffic and heals with
zero honest evictions and post-heal delivery; a crash-restarted node
comes back under its original identity (same keys, same port) and
delivers again; and a configuration that deliberately convicts honest
nodes makes the invariant checker fail loudly, naming the offending
eviction.

Live runs spend wall-clock time; timers follow the live fault-test
idiom (misbehaviour windows far beyond any injected fault, so scheduler
jitter plus scripted adversity can never fake freeriding).
"""

import asyncio

from repro.chaos import (
    ChaosSupervisor,
    FaultPlan,
    chaos_live_config,
    chaos_sim_config,
    run_chaos_live,
    run_chaos_sim,
    smoke_plan,
)
from repro.live.cluster import LiveCluster


class TestLivePartition:
    def test_partition_heals_with_no_honest_eviction(self):
        asyncio.run(self._run())

    async def _run(self):
        plan = FaultPlan(seed=0, horizon=10.0).partition(
            [0, 1, 2], [3, 4, 5], at=2.0, duration=2.0
        )
        outcome = await run_chaos_live(plan, nodes=6, seed=0, heal_bound=5.0)
        # The partition really blocked frames...
        assert outcome.counters.get("chaos_frames_blackholed", 0) > 0
        # ...and still: nobody was evicted, delivery resumed in bound.
        assert outcome.evictions == 0
        assert outcome.report.ok, outcome.report.render()
        assert outcome.deliveries > 0


class TestCrashRestart:
    def test_restarted_node_rejoins_and_delivers(self):
        asyncio.run(self._run())

    async def _run(self):
        plan = FaultPlan(seed=1, horizon=12.0).crash_restart(1, at=1.5, downtime=1.5)
        cluster = LiveCluster(5, config=chaos_live_config(), seed=1)
        await cluster.start()
        supervisor = ChaosSupervisor(cluster, plan)
        supervisor.start()
        try:
            old_port = cluster.nodes[1].port
            for _ in range(80):  # wait out crash + downtime + restart
                await asyncio.sleep(0.25)
                if supervisor.restarts:
                    break
            assert supervisor.restarts == 1, supervisor.log
            node = cluster.nodes[1]
            assert not node.killed and node.rac is not None
            assert node.port == old_port  # same identity, same endpoint
            assert node.incarnation == 1

            # Post-restart traffic: the reborn node must deliver again.
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 20.0
            k = 0
            while not node.delivered() and loop.time() < deadline:
                cluster.queue_message(0, 1, b"welcome-back-%d" % k)
                k += 1
                await asyncio.sleep(0.4)
            delivered = list(node.delivered())
        finally:
            await supervisor.stop()
            report = await cluster.shutdown()
        assert delivered, "restarted node never delivered after rejoining"
        assert not report.evicted
        # The report still carries the first incarnation's counters.
        assert report.per_node[node.node_id].get("live_connects", 0) > 0


class TestDeliberateHonestEviction:
    def test_checker_fails_and_names_the_offending_event(self):
        """Shrink the misbehaviour timers below the fault window (and
        starve the ARQ) so the protocol *does* convict honest nodes —
        the checker must fail and point at the first bad eviction."""
        plan = FaultPlan(seed=1, horizon=24.0).partition(
            [0, 1, 2, 3], [4, 5, 6, 7], at=4.0, duration=6.0
        )
        config = chaos_sim_config(
            relay_timeout=6.0,
            predecessor_timeout=3.0,
            rate_window=6.0,
            transport_max_retries=8,
        )
        outcome = run_chaos_sim(plan, nodes=8, seed=1, config=config)
        assert outcome.evictions > 0
        assert not outcome.report.ok
        first = outcome.report.first
        assert first is not None
        assert first.invariant in ("safety-eviction", "safety-blacklist", "liveness")
        violations = [v for v in outcome.report.violations if v.invariant == "safety-eviction"]
        assert violations, outcome.report.render()
        # The violation names who was evicted, on what evidence, by whom.
        assert "evicted" in violations[0].event and "0x" in violations[0].event


class TestCrossSubstrate:
    def test_one_plan_runs_on_both_substrates(self):
        """The acceptance contract: the same FaultPlan object drives the
        simulator and the live cluster, and both judge it clean."""
        plan = smoke_plan(6, 12.0)
        sim = run_chaos_sim(plan, nodes=6, seed=2)
        live = asyncio.run(run_chaos_live(plan, nodes=6, seed=2))
        assert sim.plan_fingerprint == live.plan_fingerprint == plan.fingerprint()
        assert sim.report.ok, sim.report.render()
        assert live.report.ok, live.report.render()
        assert sim.deliveries > 0 and live.deliveries > 0
        # The live run really exercised the supervisor path.
        assert any("restarted node#1" in line for line in live.log)
