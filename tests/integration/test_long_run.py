"""Long-run hygiene: state GC, stability, and preset configurations."""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


class TestPresets:
    def test_paper_preset_matches_section_vi(self):
        config = RacConfig.paper()
        assert (config.num_relays, config.num_rings) == (5, 7)
        assert config.message_size == 10_000

    def test_small_preset_overridable(self):
        config = RacConfig.small(num_rings=5, blacklist_period=0.0)
        assert config.num_rings == 5
        assert config.blacklist_period == 0.0
        assert config.num_relays == 2


class TestStateGarbageCollection:
    def test_records_are_collected_in_long_runs(self):
        config = RacConfig.small(state_gc_ticks=30, blacklist_period=0.0)
        system = RacSystem(config, seed=91)
        system.bootstrap(8)
        system.run(8.0)  # ~160 ticks/node, several GC cycles past the horizon
        assert system.stats.value("state_records_collected") > 0
        # Live state stays bounded: each node retains only the records
        # inside the GC horizon, not one per broadcast ever seen.
        per_node_records = [
            sum(len(state) for state in node._states.values())
            for node in system.nodes.values()
        ]
        total_broadcasts = system.stats.value("noise_broadcasts")
        assert max(per_node_records) < total_broadcasts

    def test_gc_disabled_keeps_everything(self):
        config = RacConfig.small(state_gc_ticks=0, blacklist_period=0.0)
        system = RacSystem(config, seed=92)
        system.bootstrap(6)
        system.run(3.0)
        assert system.stats.value("state_records_collected") == 0

    def test_gc_does_not_break_delivery_or_checks(self):
        config = RacConfig.small(state_gc_ticks=30, blacklist_period=0.0)
        system = RacSystem(config, seed=93)
        nodes = system.bootstrap(10)
        system.run(4.0)  # GC has run repeatedly
        system.send(nodes[0], nodes[5], b"after the sweep")
        system.run(3.0)
        assert system.delivered_messages(nodes[5]) == [b"after the sweep"]
        assert system.evicted == {}


class TestExtendedStability:
    def test_thirty_simulated_seconds_clean(self):
        # An all-honest population must stay eviction-free indefinitely;
        # 30 simulated seconds crosses every timer many times over.
        config = RacConfig.small(blacklist_period=3.0)
        system = RacSystem(config, seed=94)
        nodes = system.bootstrap(10)
        for round_ in range(10):
            system.send(nodes[round_ % 10], nodes[(round_ + 3) % 10], b"r%d" % round_)
            system.run(3.0)
        assert system.evicted == {}
        total_delivered = sum(len(system.delivered_messages(n)) for n in nodes)
        assert total_delivered == 10
