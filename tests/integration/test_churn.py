"""Integration tests: membership churn under live traffic.

Joins, voluntary leaves, crashes, and the split/dissolve lifecycle —
all while the constant-rate broadcast machinery keeps running. The
invariant throughout: the protocol stays delivery-capable and never
evicts an honest live node.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


def config(**overrides):
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.05,
        relay_timeout=1.0,
        predecessor_timeout=0.5,
        rate_window=1.2,
        blacklist_period=2.0,
        puzzle_bits=2,
        join_settle_time=0.3,
    )
    base.update(overrides)
    return RacConfig(**base)


class TestVoluntaryLeave:
    def test_leave_causes_no_accusations(self):
        system = RacSystem(config(), seed=51)
        nodes = system.bootstrap(12)
        system.run(2.0)
        system.leave(nodes[3])
        system.run(4.0)
        assert system.evicted == {}
        assert system.stats.value("voluntary_leaves") == 1

    def test_delivery_works_after_leave(self):
        system = RacSystem(config(), seed=52)
        nodes = system.bootstrap(12)
        system.run(2.0)
        system.leave(nodes[3])
        system.run(1.0)
        survivors = [n for n in nodes if n != nodes[3]]
        assert system.send(survivors[0], survivors[5], b"still here")
        system.run(4.0)
        assert system.delivered_messages(survivors[5]) == [b"still here"]

    def test_double_leave_rejected(self):
        system = RacSystem(config(), seed=53)
        nodes = system.bootstrap(8)
        system.run(1.0)
        system.leave(nodes[0])
        with pytest.raises(ValueError):
            system.leave(nodes[0])


class TestCrash:
    def test_crashed_node_is_purged_by_the_protocol(self):
        system = RacSystem(config(), seed=54)
        nodes = system.bootstrap(12)
        system.run(2.0)
        system.nodes[nodes[2]].stop()  # silent crash, no announcement
        system.run(5.0)
        assert nodes[2] in system.evicted
        assert [n for n in system.evicted if n != nodes[2]] == []

    def test_two_simultaneous_crashes(self):
        system = RacSystem(config(), seed=55)
        nodes = system.bootstrap(14)
        system.run(2.0)
        system.nodes[nodes[1]].stop()
        system.nodes[nodes[7]].stop()
        system.run(8.0)
        assert nodes[1] in system.evicted and nodes[7] in system.evicted
        assert set(system.evicted) == {nodes[1], nodes[7]}


class TestJoinChurn:
    def test_sequential_joins_under_traffic(self):
        system = RacSystem(config(), seed=56)
        nodes = system.bootstrap(8)
        system.run(1.0)
        joiners = [system.join() for _ in range(4)]
        system.run(1.5)
        # Everyone (old and new) is ring-connected and reachable.
        for joiner in joiners:
            assert system.send(nodes[0], joiner, b"hi %d" % (joiner % 100))
        system.run(6.0)
        for joiner in joiners:
            assert len(system.delivered_messages(joiner)) == 1
        assert system.evicted == {}

    def test_joiner_can_send_after_quarantine(self):
        system = RacSystem(config(), seed=57)
        nodes = system.bootstrap(8)
        system.run(1.0)
        joiner = system.join()
        system.run(2 * 0.3 + 0.5)
        assert system.send(joiner, nodes[0], b"from the newcomer")
        system.run(4.0)
        assert system.delivered_messages(nodes[0]) == [b"from the newcomer"]


class TestSplitDissolveUnderTraffic:
    def test_join_storm_triggers_splits_and_stays_consistent(self):
        system = RacSystem(config(group_min=3, group_max=8), seed=58)
        system.bootstrap(8)
        system.run(0.5)
        for _ in range(10):
            system.join()
            system.run(0.2)
        assert len(system.directory.groups) >= 2
        system.directory.check_invariants()
        system.run(3.0)
        assert system.evicted == {}

    def test_leave_storm_triggers_dissolve(self):
        system = RacSystem(config(group_min=4, group_max=10), seed=59)
        nodes = system.bootstrap(22)
        groups_before = len(system.directory.groups)
        assert groups_before >= 2
        system.run(1.0)
        # Empty out the smallest group below smin.
        sizes = system.directory.sizes()
        victim_gid = min(sizes, key=sizes.get)
        victims = sorted(system.directory.groups[victim_gid].members)
        for node_id in victims[: len(victims) - 2]:
            system.leave(node_id)
            system.run(0.2)
        assert victim_gid not in system.directory.groups
        system.directory.check_invariants()
        system.run(2.0)
        # The rehomed survivors are still reachable.
        survivor = victims[-1]
        sender = next(n for n in nodes if system.nodes[n].active and n != survivor)
        assert system.send(sender, survivor, b"welcome to your new group")
        system.run(5.0)
        assert system.delivered_messages(survivor) == [b"welcome to your new group"]
