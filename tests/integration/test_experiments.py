"""Integration tests for the experiment harnesses (figures/tables)."""

import pytest

from repro.experiments import (
    all_claims,
    figure1,
    figure3,
    nash_table,
    paper_sweep_sizes,
    render_claims,
    simulate_deviation,
    table1,
    trace_dissemination,
)


class TestFigure1:
    def test_series_cover_the_sweep(self):
        result = figure1()
        assert result.sizes[0] == 100 and result.sizes[-1] == 100_000
        assert len(result.dissent_v1) == len(result.sizes)

    def test_v2_dominates_v1_at_scale(self):
        result = figure1()
        for i, n in enumerate(result.sizes):
            if n >= 1000:
                assert result.dissent_v2[i] > result.dissent_v1[i]

    def test_both_collapse_with_n(self):
        result = figure1()
        assert result.dissent_v1[-1] < result.dissent_v1[0] / 10_000
        assert result.dissent_v2[-1] < result.dissent_v2[0] / 100

    def test_render_contains_rows(self):
        text = figure1(sizes=[100, 1000]).render()
        assert "Dissent v1" in text and "1000" in text


class TestFigure3:
    def test_headline_ratios(self):
        result = figure3()
        assert result.ratio_at(100_000, "rac_nogroup") == pytest.approx(15, rel=0.05)
        assert result.ratio_at(100_000, "rac_grouped") == pytest.approx(1500, rel=0.05)

    def test_rac_grouped_flat_above_group_size(self):
        result = figure3()
        plateau = [
            t for n, t in zip(result.sizes, result.rac_grouped) if n >= 1000
        ]
        assert max(plateau) == pytest.approx(min(plateau))

    def test_rac_configs_coincide_below_group_size(self):
        result = figure3()
        for n, a, b in zip(result.sizes, result.rac_nogroup, result.rac_grouped):
            if n <= 1000:
                assert a == pytest.approx(b)

    def test_render(self):
        text = figure3(sizes=[100, 100_000]).render()
        assert "RAC-1000" in text and "kb/s" in text


class TestTable1:
    @pytest.fixture(scope="class")
    def result(self):
        return table1()

    def test_dissent_columns_all_zero(self, result):
        for (f, prop, protocol), cell in result.cells.items():
            if protocol in ("Dissent v1", "Dissent v2"):
                assert cell.is_zero()

    def test_rac1000_sender_cells(self, result):
        assert str(result.cell(0.1, "sender", "RAC-1000")) == "7.3e-22"
        assert str(result.cell(0.9, "sender", "RAC-1000")) in ("6.6e-11", "7.1e-11")

    def test_rac1000_receiver_cells(self, result):
        assert str(result.cell(0.1, "receiver", "RAC-1000")) == "5.8e-1020"
        assert str(result.cell(0.5, "receiver", "RAC-1000")) == "1.2e-303"
        assert str(result.cell(0.9, "receiver", "RAC-1000")) == "1.1e-46"

    def test_nogroup_receiver_zero(self, result):
        for f in result.fractions:
            assert result.cell(f, "receiver", "RAC-NoGroup").is_zero()

    def test_onion_equals_nogroup_sender(self, result):
        for f in result.fractions:
            assert result.cell(f, "sender", "Onion") == result.cell(
                f, "sender", "RAC-NoGroup"
            )

    def test_anonymity_set_row(self, result):
        assert result.set_sizes["RAC-1000"] == 1000
        assert result.set_sizes["Dissent v1"] == 100_000

    def test_render_shape(self, result):
        text = result.render()
        assert text.count("\n") >= 11  # header + set row + 9 data rows
        assert "5.8e-1020" in text


class TestTextClaims:
    def test_all_claims_hold(self):
        for claim in all_claims():
            assert claim.holds, f"{claim.section}: {claim.statement}"

    def test_render(self):
        text = render_claims()
        assert "NO" not in text.split("OK")[-1] or "yes" in text


class TestNashExperiment:
    def test_table_reports_equilibrium(self):
        text = nash_table()
        assert "Theorem 1 (Nash equilibrium): holds" in text
        assert "YES (violation!)" not in text

    def test_simulated_deviations_match_lemmas(self):
        outcome = simulate_deviation("drop-forwarding", population=12, seed=4, max_time=15.0)
        assert outcome.evicted
        assert outcome.false_evictions == 0


class TestFigure2Trace:
    def test_walkthrough(self):
        trace = trace_dissemination(population=10, num_relays=2, num_rings=3, seed=7)
        assert trace.delivered_payload == b"the message of figure 2"
        assert len(trace.relays) == 2
        narrative = trace.narrative()
        assert "Step 1" in narrative and "Step 3" in narrative


class TestSweepSizes:
    def test_paper_range(self):
        sizes = paper_sweep_sizes()
        assert sizes[0] == 100 and sizes[-1] == 100_000
        assert all(a < b for a, b in zip(sizes, sizes[1:]))

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            paper_sweep_sizes(start=1000, stop=100)
