"""Integration tests: closed-loop rate control under overload.

With an open-loop interval that demands more than the link can carry,
queues grow without bound and timers eventually misfire. The adaptive
mode (Section III's "highest possible throughput it can sustain",
implemented as backlog-based slot deferral) keeps the system stable at
the same offered load.
"""

import pytest

from repro.core.config import RacConfig
from repro.core.system import RacSystem


def overload_config(**overrides):
    # Saturation interval for (R=3, G=8, M=2048, C=5 Mb/s) is ~79 ms;
    # a 30 ms interval overshoots the link by ~2.6x.
    base = dict(
        num_relays=2,
        num_rings=3,
        group_min=2,
        group_max=10**9,
        message_size=2048,
        send_interval=0.03,
        relay_timeout=3.0,
        predecessor_timeout=2.0,
        rate_window=3.0,
        blacklist_period=0.0,
        puzzle_bits=2,
        link_bandwidth_bps=5e6,
    )
    base.update(overrides)
    return RacConfig(**base)


def max_backlog(system):
    return max(
        system.uplink_backlog_seconds(node_id) for node_id in system.active_node_ids()
    )


class TestOpenLoopOverload:
    def test_backlog_grows_without_bound(self):
        system = RacSystem(overload_config(), seed=121)
        system.bootstrap(8)
        system.run(3.0)
        early = max_backlog(system)
        system.run(3.0)
        late = max_backlog(system)
        assert late > early  # still growing
        assert late > 1.0  # far beyond any sane queue


class TestAdaptiveRate:
    def test_backlog_stays_bounded(self):
        system = RacSystem(overload_config(adaptive_backlog_limit=0.1), seed=122)
        system.bootstrap(8)
        system.run(6.0)
        assert max_backlog(system) < 0.5
        assert system.stats.value("slot_deferred") > 0

    def test_still_delivers_and_never_misfires(self):
        system = RacSystem(overload_config(adaptive_backlog_limit=0.1), seed=123)
        nodes = system.bootstrap(8)
        system.run(2.0)
        system.send(nodes[0], nodes[4], b"through the backpressure")
        system.run(8.0)
        assert system.delivered_messages(nodes[4]) == [b"through the backpressure"]
        assert system.evicted == {}

    def test_no_deferrals_when_underloaded(self):
        config = overload_config(
            send_interval=0.2, adaptive_backlog_limit=0.1  # well under capacity
        )
        system = RacSystem(config, seed=124)
        system.bootstrap(8)
        system.run(4.0)
        assert system.stats.value("slot_deferred") == 0
