"""Property-based tests for the wire codecs: decode(encode(x)) == x."""

from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    Accusation,
    BlacklistShare,
    Broadcast,
    EvictionNotice,
    JoinAnnounce,
    JoinRequest,
    ReadyMessage,
    channel_domain,
    group_domain,
)
from repro.core.wire import decode_message, encode_message
from repro.crypto.keys import KeyPair

ids = st.integers(min_value=0, max_value=(1 << 128) - 1)
gids = st.integers(min_value=0, max_value=(1 << 64) - 1)
_SIM_KEYS = [KeyPair.generate("sim", seed=i).public for i in range(4)]

domains = st.one_of(
    gids.map(group_domain),
    st.tuples(gids, gids).filter(lambda t: t[0] != t[1]).map(lambda t: channel_domain(*t)),
)

broadcasts = st.builds(
    Broadcast,
    domain=domains,
    msg_id=ids,
    wire=st.binary(min_size=0, max_size=512),
    ring_index=st.integers(min_value=0, max_value=63),
)

accusations = st.builds(
    Accusation,
    accuser=ids,
    accused=ids,
    domain=domains,
    reason=st.sampled_from(["missing-copy", "replay", "rate-low", "rate-high", "weird reason π"]),
    msg_id=st.one_of(st.none(), ids),
)

join_requests = st.builds(
    JoinRequest,
    node_id=ids,
    key_id=ids,
    puzzle_vector=ids,
    id_public_key=st.sampled_from(_SIM_KEYS),
)

messages = st.one_of(
    broadcasts,
    accusations,
    join_requests,
    st.builds(JoinAnnounce, request=join_requests, sponsor=ids),
    st.builds(ReadyMessage, node_id=ids),
    st.builds(EvictionNotice, evicted=ids, from_gid=gids, notifier=ids),
    st.builds(
        BlacklistShare,
        group_gid=gids,
        accused=st.lists(ids, max_size=20).map(tuple),
    ),
)


@settings(max_examples=200)
@given(messages)
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=100)
@given(messages, messages)
def test_distinct_messages_encode_distinctly(a, b):
    if a != b:
        assert encode_message(a) != encode_message(b)
