"""Property-based tests for the wire codecs: decode(encode(x)) == x,
and decode on arbitrary / mutated bytes fails only with WireError."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    Accusation,
    BlacklistShare,
    Broadcast,
    EvictionNotice,
    JoinAnnounce,
    JoinRequest,
    ReadyMessage,
    channel_domain,
    group_domain,
)
from repro.core.wire import WireError, decode_message, encode_message
from repro.crypto.keys import KeyPair

ids = st.integers(min_value=0, max_value=(1 << 128) - 1)
gids = st.integers(min_value=0, max_value=(1 << 64) - 1)
_SIM_KEYS = [KeyPair.generate("sim", seed=i).public for i in range(4)]

domains = st.one_of(
    gids.map(group_domain),
    st.tuples(gids, gids).filter(lambda t: t[0] != t[1]).map(lambda t: channel_domain(*t)),
)

broadcasts = st.builds(
    Broadcast,
    domain=domains,
    msg_id=ids,
    wire=st.binary(min_size=0, max_size=512),
    ring_index=st.integers(min_value=0, max_value=63),
)

accusations = st.builds(
    Accusation,
    accuser=ids,
    accused=ids,
    domain=domains,
    reason=st.sampled_from(["missing-copy", "replay", "rate-low", "rate-high", "weird reason π"]),
    msg_id=st.one_of(st.none(), ids),
)

join_requests = st.builds(
    JoinRequest,
    node_id=ids,
    key_id=ids,
    puzzle_vector=ids,
    id_public_key=st.sampled_from(_SIM_KEYS),
)

messages = st.one_of(
    broadcasts,
    accusations,
    join_requests,
    st.builds(JoinAnnounce, request=join_requests, sponsor=ids),
    st.builds(ReadyMessage, node_id=ids),
    st.builds(EvictionNotice, evicted=ids, from_gid=gids, notifier=ids),
    st.builds(
        BlacklistShare,
        group_gid=gids,
        accused=st.lists(ids, max_size=20).map(tuple),
    ),
)


@settings(max_examples=200)
@given(messages)
def test_roundtrip(message):
    assert decode_message(encode_message(message)) == message


@settings(max_examples=100)
@given(messages, messages)
def test_distinct_messages_encode_distinctly(a, b):
    if a != b:
        assert encode_message(a) != encode_message(b)


# ---------------------------------------------------------------------------
# adversarial inputs: decode_message must fail *only* with WireError
# ---------------------------------------------------------------------------


def _decode_total(data: bytes):
    """decode_message as a total function: the value, or WireError.

    Any other exception (struct.error, IndexError, KeyError, ...) is a
    hardening bug and propagates to fail the test.
    """
    try:
        return decode_message(bytes(data))
    except WireError:
        return None


@settings(max_examples=200)
@given(st.binary(min_size=0, max_size=600))
def test_arbitrary_bytes_never_leak_internal_errors(data):
    _decode_total(data)


@settings(max_examples=100)
@given(messages)
def test_truncations_raise_only_wireerror(message):
    """Every strict prefix of a valid encoding must be rejected cleanly
    (a short TCP read or cut frame is routine, not exceptional)."""
    encoded = encode_message(message)
    for cut in range(len(encoded)):
        assert _decode_total(encoded[:cut]) != message


@settings(max_examples=50)
@given(messages, st.data())
def test_byte_mutations_raise_only_wireerror(message, data):
    """Flip bytes of a valid encoding one position at a time: every
    mutation either decodes to *some* message or raises WireError —
    never an internal exception."""
    encoded = bytearray(encode_message(message))
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(encoded) - 1),
            min_size=1,
            max_size=8,
            unique=True,
        )
    )
    for pos in positions:
        mutated = bytearray(encoded)
        mutated[pos] = data.draw(
            st.integers(min_value=0, max_value=255).filter(lambda b: b != encoded[pos]),
            label=f"byte@{pos}",
        )
        _decode_total(bytes(mutated))


def test_deeply_nested_join_announce_is_rejected():
    """A hand-built frame nesting JoinAnnounce inside itself past the
    depth limit must raise WireError, not RecursionError."""
    inner = encode_message(ReadyMessage(node_id=7))
    for _ in range(64):
        # type tag 0x04 (JoinAnnounce) + length-prefixed inner + sponsor id
        inner = bytes([0x04]) + len(inner).to_bytes(4, "big") + inner + (0).to_bytes(16, "big")
    with pytest.raises(WireError):
        decode_message(inner)
