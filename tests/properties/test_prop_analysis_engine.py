"""Property-based tests for the analysis layer and the event engine."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.anonymity import (
    receiver_break_grouped,
    sender_break_grouped,
    sender_break_nogroup,
)
from repro.analysis.probability import LogProb, ZERO
from repro.analysis.rings_math import opponent_successors_at_least
from repro.analysis.throughput import (
    dissent_v1_throughput,
    dissent_v2_throughput,
    rac_throughput,
)
from repro.simnet.engine import Simulator

probs = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestLogProbAlgebra:
    @given(probs, probs)
    def test_product_matches_float_multiplication(self, a, b):
        left = (LogProb.from_float(a) * LogProb.from_float(b)).value
        assert left == max(0.0, a * b) or math.isclose(left, a * b, rel_tol=1e-9)

    @given(probs, probs)
    def test_ordering_matches_floats(self, a, b):
        if a < b:
            assert LogProb.from_float(a) < LogProb.from_float(b)

    @given(st.lists(probs, min_size=1, max_size=50))
    def test_product_never_exceeds_smallest_factor(self, factors):
        p = LogProb.product(factors)
        assert p.value <= min(factors) + 1e-12


class TestAnonymityMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        f1=st.floats(min_value=0.01, max_value=0.95),
        f2=st.floats(min_value=0.01, max_value=0.95),
    )
    def test_sender_break_monotone_in_f(self, f1, f2):
        lo, hi = sorted((f1, f2))
        weak = sender_break_nogroup(10_000, lo, 3)
        strong = sender_break_nogroup(10_000, hi, 3)
        assert weak.log10 <= strong.log10 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(L1=st.integers(min_value=1, max_value=8), L2=st.integers(min_value=1, max_value=8))
    def test_more_relays_strengthen_sender_anonymity(self, L1, L2):
        lo, hi = sorted((L1, L2))
        assert sender_break_nogroup(10_000, 0.2, hi).log10 <= sender_break_nogroup(
            10_000, 0.2, lo
        ).log10 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(
        G1=st.integers(min_value=50, max_value=2000),
        G2=st.integers(min_value=50, max_value=2000),
    )
    def test_bigger_groups_strengthen_receiver_anonymity(self, G1, G2):
        lo, hi = sorted((G1, G2))
        assert receiver_break_grouped(100_000, hi, 0.3).log10 <= receiver_break_grouped(
            100_000, lo, 0.3
        ).log10 + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(f=st.floats(min_value=0.02, max_value=0.4))
    def test_grouped_break_never_beats_nogroup(self, f):
        grouped = sender_break_grouped(100_000, 1000, f, 5)
        nogroup = sender_break_nogroup(100_000, f, 5)
        assert grouped.log10 <= nogroup.log10 + 1e-9


class TestThroughputProperties:
    @settings(max_examples=30)
    @given(n=st.integers(min_value=4, max_value=200_000))
    def test_ordering_beyond_crossover(self, n):
        # At every size, Dissent v1 <= Dissent v2 (v2's whole point).
        assert dissent_v1_throughput(n) <= dissent_v2_throughput(n) * 1.01

    @settings(max_examples=30)
    @given(
        n1=st.integers(min_value=1000, max_value=200_000),
        n2=st.integers(min_value=1000, max_value=200_000),
    )
    def test_rac_flat_in_n(self, n1, n2):
        assert rac_throughput(n1) == rac_throughput(n2)

    @settings(max_examples=30)
    @given(k=st.integers(min_value=0, max_value=7), f=probs)
    def test_tail_probability_decreasing_in_k(self, k, f):
        a = opponent_successors_at_least(7, f, k)
        b = opponent_successors_at_least(7, f, k + 1)
        assert b.value <= a.value + 1e-12


class TestEngineProperties:
    @settings(max_examples=30)
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=30)
    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30),
        horizon=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_run_until_is_exact(self, delays, horizon):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(d))
        sim.run(until=horizon)
        assert all(d <= horizon for d in fired)
        assert sim.now == horizon or not [d for d in delays if d > horizon]
        sim.run()
        assert len(fired) == len(delays)
