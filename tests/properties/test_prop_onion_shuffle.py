"""Property-based tests for onions and the accountable shuffle."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.onion import build_onion, onion_capacity, peel, unwrap_wire, wrap_wire
from repro.crypto.hashes import message_id
from repro.crypto.keys import KeyPair
from repro.crypto.shuffle import DishonestParticipant, ShuffleParticipant, run_shuffle

PADDED = 4096
_KEY_CACHE = {i: KeyPair.generate("sim", seed=i) for i in range(12)}


class TestOnionProperties:
    @settings(max_examples=40)
    @given(
        payload=st.binary(min_size=0, max_size=256),
        num_relays=st.integers(min_value=1, max_value=6),
        marker=st.one_of(st.none(), st.integers(min_value=1, max_value=2**40)),
        seed=st.integers(min_value=0, max_value=2**30),
    )
    def test_full_chain_roundtrip(self, payload, num_relays, marker, seed):
        relays = [_KEY_CACHE[i] for i in range(num_relays)]
        dest = _KEY_CACHE[10]
        onion = build_onion(
            payload,
            [r.public for r in relays],
            dest.public,
            PADDED,
            marker_gid=marker,
            rng=random.Random(seed),
        )
        wire = onion.first_wire
        ids = [message_id(unwrap_wire(wire))]
        for index, relay in enumerate(relays):
            result = peel(wire, relay, None, PADDED, rng=random.Random(seed + index))
            assert result.kind == "relay"
            assert len(result.inner_wire) == PADDED
            if index == num_relays - 1:
                assert result.channel_gid == marker
            else:
                assert result.channel_gid is None
            wire = result.inner_wire
            ids.append(result.inner_msg_id)
        final = peel(wire, None, dest, PADDED)
        assert final.kind == "deliver"
        assert final.payload == payload
        assert ids == onion.layer_msg_ids

    @settings(max_examples=40)
    @given(blob=st.binary(min_size=0, max_size=1000), size=st.integers(min_value=1024, max_value=4096))
    def test_wire_padding_roundtrip(self, blob, size):
        wire = wrap_wire(blob, size)
        assert len(wire) == size
        assert unwrap_wire(wire) == blob

    @settings(max_examples=20)
    @given(num_relays=st.integers(min_value=1, max_value=6))
    def test_capacity_bound_is_tight_enough(self, num_relays):
        keys = [_KEY_CACHE[i].public for i in range(num_relays)]
        capacity = onion_capacity(PADDED, num_relays, keys[0])
        assert capacity > 0
        payload = b"z" * capacity
        onion = build_onion(payload, keys, _KEY_CACHE[10].public, PADDED, rng=random.Random(1))
        assert len(onion.first_wire) == PADDED


class TestShuffleProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**20),
        length=st.integers(min_value=1, max_value=64),
    )
    def test_honest_shuffle_is_a_permutation(self, n, seed, length):
        rng = random.Random(seed)
        participants = [ShuffleParticipant(i, rng=random.Random(rng.getrandbits(32))) for i in range(n)]
        messages = [bytes([i]) * length for i in range(n)]
        result = run_shuffle(participants, messages)
        assert result.success
        assert sorted(result.messages) == sorted(messages)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=6),
        cheater=st.integers(min_value=0, max_value=5),
        mode=st.sampled_from(DishonestParticipant.MODES),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    def test_any_cheater_is_blamed(self, n, cheater, mode, seed):
        cheater %= n
        rng = random.Random(seed)
        participants = []
        for i in range(n):
            sub_rng = random.Random(rng.getrandbits(32))
            if i == cheater:
                participants.append(DishonestParticipant(i, mode, rng=sub_rng))
            else:
                participants.append(ShuffleParticipant(i, rng=sub_rng))
        messages = [bytes([65 + i]) * 24 for i in range(n)]
        result = run_shuffle(participants, messages)
        assert not result.success
        assert result.blamed == [cheater]
        assert result.messages is None
