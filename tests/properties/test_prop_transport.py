"""Property-based tests for the ARQ transport on lossy links.

Under arbitrary seeded loss up to 30%, the transport must still honour
the footnote-6 contract protocol code relies on:

* every sent message is delivered **exactly once**;
* deliveries between a given (src, dst) pair happen **in send order**;
* two runs with the same seed produce **identical delivery traces**
  (the replay guarantee every debugging session depends on).
"""

from hypothesis import given, settings, strategies as st

from repro.simnet.engine import Simulator
from repro.simnet.faults import FaultInjector
from repro.simnet.network import StarNetwork
from repro.simnet.transport import ReliableTransport

NODES = (1, 2, 3)

#: A traffic plan: (src index, dst index) per message; payloads are the
#: message's position in the plan, so order checks are trivial.
plans = st.lists(
    st.tuples(st.integers(0, len(NODES) - 1), st.integers(0, len(NODES) - 1)),
    min_size=1,
    max_size=40,
).map(lambda pairs: [(NODES[s], NODES[d]) for s, d in pairs if s != d])


def run_plan(plan, seed, loss):
    """Execute a traffic plan; returns the delivery trace."""
    sim = Simulator()
    faults = FaultInjector(sim, seed=seed, loss_rate=loss)
    net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
    # max_retries is set high enough that non-delivery has vanishing
    # probability even at 30% loss (0.3^41 per segment).
    transport = ReliableTransport(net, max_retries=40)
    trace = []
    for node in NODES:
        transport.attach(
            node, lambda src, payload, node=node: trace.append((sim.now, src, node, payload))
        )
    for i, (src, dst) in enumerate(plan):
        transport.send(src, dst, i, 20 + (i % 7))
    sim.run()
    return trace


@settings(max_examples=30, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**32 - 1), loss=st.floats(0.0, 0.3))
def test_exactly_once_and_per_pair_order(plan, seed, loss):
    trace = run_plan(plan, seed, loss)
    delivered = [payload for _t, _src, _dst, payload in trace]
    # Exactly once: every message index appears exactly one time.
    assert sorted(delivered) == list(range(len(plan)))
    # Per-pair FIFO: for each (src, dst), delivery order == send order.
    for src, dst in set(plan):
        sent = [i for i, pair in enumerate(plan) if pair == (src, dst)]
        got = [payload for _t, s, d, payload in trace if (s, d) == (src, dst)]
        assert got == sent


@settings(max_examples=20, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**32 - 1), loss=st.floats(0.0, 0.3))
def test_same_seed_replays_identical_trace(plan, seed, loss):
    assert run_plan(plan, seed, loss) == run_plan(plan, seed, loss)


@settings(max_examples=15, deadline=None)
@given(plan=plans, seed=st.integers(0, 2**32 - 1))
def test_lossless_run_has_no_retransmissions(plan, seed):
    sim = Simulator()
    faults = FaultInjector(sim, seed=seed)
    net = StarNetwork(sim, bandwidth_bps=1_000_000, faults=faults)
    transport = ReliableTransport(net)
    for node in NODES:
        transport.attach(node, lambda src, payload: None)
    for i, (src, dst) in enumerate(plan):
        transport.send(src, dst, i, 50)
    sim.run()
    assert transport.retransmits == 0
    assert transport.duplicates == 0
    assert transport.messages_delivered == len(plan)
