"""Fuzzing properties: hostile bytes never crash the parsers.

A global active opponent controls nodes that can send arbitrary bytes;
every parsing surface (wire codecs, onion peeling, sealed boxes) must
fail *closed* — a typed error or an 'opaque' verdict, never an
unhandled exception.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.onion import build_onion, peel, unwrap_wire, wrap_wire
from repro.core.wire import WireError, decode_message, encode_message
from repro.core.messages import Broadcast, group_domain
from repro.crypto.keys import AuthenticationError, KeyPair

_ID_KEY = KeyPair.generate("sim", seed=1)
_PSEUD_KEY = KeyPair.generate("sim", seed=2)


class TestDecoderFuzz:
    @settings(max_examples=300)
    @given(st.binary(min_size=0, max_size=300))
    def test_random_bytes_raise_wire_error_or_decode(self, data):
        try:
            decode_message(data)
        except WireError:
            pass  # the only acceptable failure mode

    @settings(max_examples=100)
    @given(st.binary(min_size=1, max_size=200), st.integers(min_value=0, max_value=199))
    def test_bitflipped_frames_never_crash(self, payload, position):
        frame = bytearray(encode_message(Broadcast(group_domain(1), 7, payload, 0)))
        frame[position % len(frame)] ^= 0xFF
        try:
            decode_message(bytes(frame))
        except WireError:
            pass


class TestPeelFuzz:
    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=4096))
    def test_arbitrary_wires_are_opaque_or_reject(self, wire):
        result = peel(wire, _ID_KEY, _PSEUD_KEY, 4096)
        assert result.kind in ("opaque", "relay", "deliver")

    @settings(max_examples=100)
    @given(st.integers(min_value=0, max_value=4095), st.integers(min_value=0, max_value=7))
    def test_bitflipped_onions_never_misdeliver(self, position, bit):
        onion = build_onion(
            b"genuine payload",
            [_ID_KEY.public],
            _PSEUD_KEY.public,
            4096,
            rng=random.Random(9),
        )
        wire = bytearray(onion.first_wire)
        wire[position] ^= 1 << bit
        result = peel(bytes(wire), _ID_KEY, _PSEUD_KEY, 4096)
        # A corrupted layer must never surface a *wrong* payload: it is
        # either rejected (opaque) or, if the flip hit only padding, the
        # original intact layer.
        if result.kind == "relay":
            assert result.inner_msg_id == onion.layer_msg_ids[1]
        else:
            assert result.kind == "opaque"

    @settings(max_examples=100)
    @given(st.binary(min_size=0, max_size=100))
    def test_unwrap_wire_fails_closed(self, data):
        try:
            blob = unwrap_wire(data)
        except ValueError:
            return
        assert wrap_wire(blob, max(100, len(blob) + 4))  # still usable


class TestUnsealFuzz:
    @settings(max_examples=200)
    @given(st.binary(min_size=0, max_size=256))
    def test_arbitrary_blobs_raise_authentication_error(self, blob):
        try:
            _ID_KEY.unseal(blob)
        except AuthenticationError:
            pass
