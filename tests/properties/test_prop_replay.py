"""Property-based tests for membership-event replay convergence."""

import random

from hypothesis import given, settings, strategies as st

from repro.overlay.replay import ReplayableView, ViewEvent, converged

node_ids = st.integers(min_value=0, max_value=2**64)


@st.composite
def event_logs(draw):
    """A causally consistent event log: per-node alternating add/remove
    with increasing seq."""
    nodes = draw(st.lists(node_ids, min_size=1, max_size=12, unique=True))
    events = []
    for node in nodes:
        steps = draw(st.integers(min_value=1, max_value=4))
        for seq in range(steps):
            kind = "add" if seq % 2 == 0 else "remove"
            events.append(ViewEvent(kind, node, seq))
    order = draw(st.permutations(events))
    return list(order)


class TestConvergence:
    @settings(max_examples=40)
    @given(log=event_logs())
    def test_same_log_same_digest(self, log):
        a = ReplayableView(3)
        b = ReplayableView(3)
        a.apply_all(log)
        b.apply_all(log)
        assert converged([a, b])

    @settings(max_examples=40)
    @given(log=event_logs(), seed=st.integers(min_value=0, max_value=1000))
    def test_duplicated_deliveries_are_idempotent(self, log, seed):
        rng = random.Random(seed)
        duplicated = log + [rng.choice(log) for _ in range(len(log))]
        rng.shuffle(duplicated)
        # Duplicates may arrive in any order; per-node seqs resolve them.
        reference = ReplayableView(3)
        reference.apply_all(sorted(log, key=lambda e: (e.node_id, e.seq)))
        replica = ReplayableView(3)
        replica.apply_all(sorted(duplicated, key=lambda e: (e.node_id, e.seq)))
        assert converged([reference, replica])

    @settings(max_examples=40)
    @given(log=event_logs())
    def test_per_node_order_determines_the_outcome(self, log):
        """Replicas that respect per-node seq order converge no matter
        how events about different nodes interleave."""
        by_node_order = sorted(log, key=lambda e: (e.node_id, e.seq))
        interleaved = sorted(log, key=lambda e: (e.seq, e.node_id))
        a = ReplayableView(3)
        b = ReplayableView(3)
        a.apply_all(by_node_order)
        b.apply_all(interleaved)
        assert converged([a, b])

    @settings(max_examples=30)
    @given(log=event_logs())
    def test_membership_matches_last_event_per_node(self, log):
        replica = ReplayableView(3)
        replica.apply_all(sorted(log, key=lambda e: (e.node_id, e.seq)))
        last = {}
        for event in sorted(log, key=lambda e: e.seq):
            last[event.node_id] = event.kind
        expected = {node for node, kind in last.items() if kind == "add"}
        assert replica.view.members == expected
