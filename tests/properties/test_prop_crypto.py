"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings, strategies as st

from repro.crypto import stream
from repro.crypto.keys import AuthenticationError, KeyPair, seal

import pytest

keys_st = st.integers(min_value=0, max_value=2**32)
payloads = st.binary(min_size=0, max_size=512)


class TestStreamProperties:
    @given(payloads, st.binary(min_size=16, max_size=32), st.binary(min_size=8, max_size=16))
    def test_encrypt_decrypt_roundtrip(self, plaintext, key, nonce):
        blob = stream.encrypt(key, nonce, plaintext)
        assert stream.decrypt(key, nonce, blob) == plaintext

    @given(payloads, st.binary(min_size=16, max_size=32), st.binary(min_size=8, max_size=16))
    def test_keystream_involution(self, data, key, nonce):
        assert stream.keystream_xor(key, nonce, stream.keystream_xor(key, nonce, data)) == data

    @given(payloads, st.binary(min_size=16, max_size=32), st.binary(min_size=8, max_size=16),
           st.integers(min_value=0))
    def test_any_single_bitflip_is_detected(self, plaintext, key, nonce, position):
        blob = bytearray(stream.encrypt(key, nonce, plaintext))
        blob[position % len(blob)] ^= 1 << (position // len(blob) % 8 or 1) % 8 | 1
        with pytest.raises(stream.AuthenticationError):
            stream.decrypt(key, nonce, bytes(blob))

    @given(st.binary(min_size=16, max_size=32), st.binary(min_size=8, max_size=16),
           payloads, payloads)
    def test_mac_distinguishes_messages(self, key, nonce, a, b):
        if a != b:
            assert stream.mac(key, a) != stream.mac(key, b)


class TestSealedBoxProperties:
    @settings(max_examples=30)
    @given(keys_st, payloads, keys_st)
    def test_roundtrip_sim_backend(self, key_seed, payload, seal_seed):
        keypair = KeyPair.generate("sim", seed=key_seed)
        assert keypair.unseal(seal(keypair.public, payload, seed=seal_seed)) == payload

    @settings(max_examples=15)
    @given(keys_st, payloads, keys_st)
    def test_roundtrip_dh_backend(self, key_seed, payload, seal_seed):
        keypair = KeyPair.generate("dh", seed=key_seed)
        assert keypair.unseal(seal(keypair.public, payload, seed=seal_seed)) == payload

    @settings(max_examples=30)
    @given(keys_st, keys_st, payloads)
    def test_wrong_key_never_opens(self, seed_a, seed_b, payload):
        alice = KeyPair.generate("sim", seed=seed_a)
        bob = KeyPair.generate("sim", seed=seed_b)
        if alice.public.key_id == bob.public.key_id:
            return  # same seed -> same key
        blob = seal(alice.public, payload, seed=1)
        with pytest.raises(AuthenticationError):
            bob.unseal(blob)
