"""Equivalence properties for the optimised crypto hot paths.

The fast-path implementations (bulk big-int keystream XOR, cached key
splitting, comb fixed-base exponentiation, the KEM shared-secret cache)
must be *byte-identical* to the straightforward seed-code definitions —
every wire blob of a fixed-seed simulation is pinned by
``tests/integration/test_determinism.py``, so even a single differing
byte would be a protocol change, not an optimisation. Each test here
re-implements the original definition from first principles and checks
the production code against it on adversarial inputs (empty messages,
non-block-multiple sizes, exact block boundaries).
"""

from __future__ import annotations

import hashlib

from hypothesis import given, settings, strategies as st

from repro.crypto import stream
from repro.crypto.dh import GROUP_TEST
from repro.crypto.keys import KeyPair, clear_kem_cache, seal

keys = st.binary(min_size=16, max_size=32)
nonces = st.binary(min_size=8, max_size=16)

# Sizes engineered around the 32-byte block: empty, sub-block, exact
# multiples, one off either side of a boundary, and a multi-block tail.
_EDGE_SIZES = [0, 1, 31, 32, 33, 63, 64, 65, 100, 512]
payloads = st.one_of(
    st.sampled_from(_EDGE_SIZES).flatmap(lambda n: st.binary(min_size=n, max_size=n)),
    st.binary(min_size=0, max_size=700),
)


def reference_keystream_xor(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """The seed implementation: per-block hash, per-byte XOR loop."""
    out = bytearray()
    counter = 0
    while len(out) < len(data):
        block = hashlib.sha256(key + nonce + counter.to_bytes(8, "big")).digest()
        out.extend(block)
        counter += 1
    return bytes(a ^ b for a, b in zip(data, out[: len(data)]))


def reference_split_key(key: bytes) -> "tuple[bytes, bytes]":
    """The seed key derivation, uncached."""
    enc = hashlib.sha256(b"rac/enc" + key).digest()
    auth = hashlib.sha256(b"rac/auth" + key).digest()
    return enc, auth


class TestKeystreamEquivalence:
    @given(keys, nonces, payloads)
    def test_bulk_xor_matches_reference(self, key, nonce, data):
        assert stream.keystream_xor(key, nonce, data) == reference_keystream_xor(
            key, nonce, data
        )

    def test_empty_message(self):
        assert stream.keystream_xor(b"k" * 16, b"n" * 8, b"") == b""

    def test_non_block_multiple_edges(self):
        key, nonce = b"k" * 16, b"n" * 8
        for size in _EDGE_SIZES:
            data = bytes(range(256)) * (size // 256 + 1)
            data = data[:size]
            assert stream.keystream_xor(key, nonce, data) == reference_keystream_xor(
                key, nonce, data
            ), f"mismatch at size {size}"


class TestSplitKeyEquivalence:
    @given(st.binary(min_size=0, max_size=64))
    def test_cached_split_matches_reference(self, key):
        assert stream._split_key(key) == reference_split_key(key)

    @given(keys, nonces, payloads)
    def test_encrypt_decrypt_round_trip_uses_same_bytes(self, key, nonce, plaintext):
        # encrypt() composes _split_key + keystream_xor + mac; if every
        # component matches its reference, the blob must round-trip and
        # equal a from-scratch recomputation.
        enc_key, auth_key = reference_split_key(key)
        expected_ct = reference_keystream_xor(enc_key, nonce, plaintext)
        expected = stream.mac(auth_key, nonce + expected_ct) + expected_ct
        assert stream.encrypt(key, nonce, plaintext) == expected
        assert stream.decrypt(key, nonce, expected) == plaintext


class TestSealEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.binary(min_size=0, max_size=200),
           st.integers(min_value=0, max_value=2**60))
    def test_sim_seal_is_cache_independent(self, key_seed, plaintext, seal_seed):
        pair = KeyPair.generate("sim", seed=key_seed)
        blob = seal(pair.public, plaintext, seed=seal_seed)
        assert seal(pair.public, plaintext, seed=seal_seed) == blob
        assert pair.unseal(blob) == plaintext

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32), st.binary(min_size=0, max_size=200),
           st.integers(min_value=0, max_value=2**60))
    def test_dh_seal_open_identical_with_cold_and_warm_kem_cache(
        self, key_seed, plaintext, seal_seed
    ):
        pair = KeyPair.generate("dh", seed=key_seed)
        clear_kem_cache()
        cold_blob = seal(pair.public, plaintext, seed=seal_seed)
        cold_open = pair.unseal(cold_blob)
        warm_blob = seal(pair.public, plaintext, seed=seal_seed)  # cache hit path
        clear_kem_cache()
        recomputed = pair.unseal(warm_blob)  # cold unseal of warm-sealed blob
        assert warm_blob == cold_blob
        assert cold_open == recomputed == plaintext


class TestFixedBasePowEquivalence:
    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**160 - 1))
    def test_comb_matches_builtin_pow(self, exponent):
        group = GROUP_TEST
        assert group.fixed_base_pow(exponent) == pow(group.generator, exponent, group.prime)

    def test_oversized_exponent_falls_back(self):
        group = GROUP_TEST
        exponent = (1 << 300) + 12345
        assert group.fixed_base_pow(exponent) == pow(group.generator, exponent, group.prime)
