"""Property-based tests for the misbehaviour monitors and eviction tracker."""

from hypothesis import given, settings, strategies as st

from repro.core.blacklist import EvictionTracker
from repro.core.messages import group_domain
from repro.core.monitor import PredecessorMonitor, RateMonitor, RelayMonitor

ids = st.integers(min_value=1, max_value=1000)


class TestRelayMonitorProperties:
    @settings(max_examples=50)
    @given(
        layer_ids=st.lists(st.integers(min_value=0, max_value=10**9), min_size=2, max_size=8, unique=True),
        observed_prefix=st.integers(min_value=0, max_value=8),
    )
    def test_blame_is_exactly_the_first_gap(self, layer_ids, observed_prefix):
        relays = list(range(100, 100 + len(layer_ids) - 1))
        monitor = RelayMonitor()
        monitor.expect(layer_ids, relays, deadline=10.0)
        prefix = min(observed_prefix, len(layer_ids))
        for msg_id in layer_ids[:prefix]:
            monitor.observe(msg_id)
        verdicts = monitor.collect_expired(11.0)
        if prefix >= len(layer_ids):
            assert verdicts == []
        elif prefix == 0:
            # Even the sender's own layer unobserved: the first relay
            # cannot be blamed for layer 0 (no relay owns it), so the
            # first *attributable* gap is layer 1's relay... layer 0 has
            # relay None, so nothing is blamed.
            assert verdicts == []
        else:
            assert len(verdicts) == 1
            assert verdicts[0].relay == relays[prefix - 1]

    @settings(max_examples=50)
    @given(deadline=st.floats(min_value=0.1, max_value=100.0), when=st.floats(min_value=0.0, max_value=200.0))
    def test_no_verdicts_before_deadline(self, deadline, when):
        monitor = RelayMonitor()
        monitor.expect([1, 2], [7], deadline=deadline)
        verdicts = monitor.collect_expired(when)
        if when < deadline:
            assert verdicts == []


class TestRateMonitorProperties:
    @settings(max_examples=50)
    @given(
        arrivals=st.lists(st.floats(min_value=0.0, max_value=10.0), max_size=40),
        window=st.floats(min_value=0.5, max_value=5.0),
        cap=st.integers(min_value=1, max_value=30),
    )
    def test_rate_low_iff_window_empty(self, arrivals, window, cap):
        monitor = RateMonitor(window=window, max_per_window=cap)
        monitor.track(7, now=0.0)
        for t in sorted(arrivals):
            monitor.record(7, t)
        now = 11.0
        verdicts = monitor.check(now)
        in_window = [t for t in arrivals if t >= now - window]
        reasons = {v.reason for v in verdicts}
        if not in_window:
            assert reasons == {"rate-low"}
        elif len(in_window) > cap:
            assert reasons == {"rate-high"}
        else:
            assert verdicts == []


class TestEvictionTrackerProperties:
    @settings(max_examples=50)
    @given(
        accusers=st.lists(ids, min_size=0, max_size=30),
        threshold=st.integers(min_value=1, max_value=10),
    )
    def test_eviction_iff_enough_distinct_followers(self, accusers, threshold):
        tracker = EvictionTracker(
            predecessor_threshold=lambda d: threshold,
            relay_threshold=lambda s: 10**9,
        )
        accused = 5000
        domain = group_domain(1)
        evicted = None
        for accuser in accusers:
            result = tracker.record_predecessor_accusation(accuser, accused, domain, True)
            if result is not None:
                evicted = result
        distinct = len(set(accusers) - {accused})
        if distinct >= threshold:
            assert evicted == accused
        else:
            assert evicted is None

    @settings(max_examples=50)
    @given(
        lists_=st.lists(st.lists(ids, max_size=5).map(tuple), min_size=1, max_size=20),
        threshold=st.integers(min_value=1, max_value=10),
    )
    def test_relay_round_eviction_matches_vote_count(self, lists_, threshold):
        tracker = EvictionTracker(
            predecessor_threshold=lambda d: 10**9,
            relay_threshold=lambda s: threshold,
        )
        evicted = tracker.record_relay_round(1, len(lists_), lists_)
        votes = {}
        for blacklist in lists_:
            for accused in set(blacklist):
                votes[accused] = votes.get(accused, 0) + 1
        expected = {a for a, count in votes.items() if count >= threshold}
        assert set(evicted) == expected
