"""Property-based tests for rings, views, groups and the DC-net."""

import random

from hypothesis import given, settings, strategies as st

from repro.baselines.dcnet import DCNet
from repro.groups.manager import GroupDirectory
from repro.overlay.rings import RingTopology

node_ids = st.lists(
    st.integers(min_value=0, max_value=2**128 - 1), min_size=2, max_size=40, unique=True
)


class TestRingProperties:
    @settings(max_examples=40)
    @given(members=node_ids, rings=st.integers(min_value=1, max_value=6))
    def test_successor_predecessor_inverse(self, members, rings):
        topo = RingTopology(members, rings)
        for node in members:
            for ring in range(rings):
                succ = topo.successor(node, ring)
                assert topo.predecessor(succ, ring) == node

    @settings(max_examples=40)
    @given(members=node_ids, rings=st.integers(min_value=1, max_value=4))
    def test_every_ring_is_one_cycle(self, members, rings):
        topo = RingTopology(members, rings)
        for ring in range(rings):
            start = members[0]
            seen = {start}
            cursor = topo.successor(start, ring)
            while cursor != start:
                assert cursor not in seen
                seen.add(cursor)
                cursor = topo.successor(cursor, ring)
            assert seen == set(members)

    @settings(max_examples=30)
    @given(members=node_ids, rings=st.integers(min_value=1, max_value=4), data=st.data())
    def test_removal_keeps_cycles_intact(self, members, rings, data):
        topo = RingTopology(members, rings)
        victim = data.draw(st.sampled_from(members))
        topo.remove_node(victim)
        remaining = set(members) - {victim}
        if len(remaining) < 2:
            return
        start = next(iter(remaining))
        for ring in range(rings):
            seen = {start}
            cursor = topo.successor(start, ring)
            while cursor != start:
                seen.add(cursor)
                cursor = topo.successor(cursor, ring)
            assert seen == remaining

    @settings(max_examples=30)
    @given(members=node_ids, rings=st.integers(min_value=1, max_value=4))
    def test_topology_is_order_independent(self, members, rings):
        forward = RingTopology(members, rings)
        backward = RingTopology(list(reversed(members)), rings)
        for node in members:
            assert forward.successors(node) == backward.successors(node)


class TestGroupDirectoryProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=2**128 - 1)),
            min_size=1,
            max_size=120,
        ),
        smax=st.integers(min_value=4, max_value=16),
    )
    def test_invariants_under_arbitrary_churn(self, ops, smax):
        directory = GroupDirectory(num_rings=2, smin=2, smax=smax)
        alive = set()
        for add, node_id in ops:
            if add and node_id not in alive:
                directory.add_node(node_id)
                alive.add(node_id)
            elif not add and alive:
                victim = min(alive)  # deterministic pick
                directory.remove_node(victim)
                alive.discard(victim)
        directory.check_invariants()
        assert set(directory.node_ids) == alive
        # Sizes honour smax after every batch (single adds cannot leave
        # an oversized group behind).
        assert all(size <= smax for size in directory.sizes().values())

    @settings(max_examples=25, deadline=None)
    @given(node_ids)
    def test_group_lookup_is_a_function_of_id(self, members):
        directory = GroupDirectory(num_rings=2, smin=2, smax=10)
        for node_id in members:
            directory.add_node(node_id)
        for node_id in members:
            assert directory.group_of_node(node_id) is directory.group_for_id(node_id)


class TestDCNetProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=8),
        sender=st.integers(min_value=0, max_value=7),
        message=st.binary(min_size=0, max_size=32),
        seed=st.binary(min_size=1, max_size=8),
    )
    def test_single_sender_always_revealed(self, n, sender, message, seed):
        net = DCNet(n, seed, slot_length=32)
        outcome = net.run_round(sender % n, message.ljust(32, b"\x00"))
        assert outcome.revealed.rstrip(b"\x00") == message.rstrip(b"\x00")

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(min_value=2, max_value=8), seed=st.binary(min_size=1, max_size=8))
    def test_empty_round_is_silent(self, n, seed):
        net = DCNet(n, seed, slot_length=16)
        assert net.run_round().revealed == b""
