# Convenience targets for the RAC reproduction.

PYTHON ?= python

.PHONY: install test bench bench-baseline ci-bench-smoke sweep-smoke live-smoke chaos-smoke campaign-smoke coalition-smoke scale-smoke pubsub-smoke topo-smoke report examples ci clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

test-fast:
	$(PYTHON) -m pytest tests/ --ignore=tests/integration/test_throughput_validation.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py

bench-baseline:  # refresh BENCH_protocol.json without the pytest benches
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py

ci-bench-smoke:  # fail if seal/peel throughput regressed >2x vs BENCH_protocol.json
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_smoke.py -q

sweep-smoke:  # 2x2 sweep on 2 workers with one injected crash; must recover
	rm -rf results/sweep_smoke
	PYTHONPATH=src $(PYTHON) -m repro sweep run --run-dir results/sweep_smoke \
		--experiment protocol --axis nodes=4,6 --seeds 0,1 \
		--base duration=1.0 --base messages=1 \
		--workers 2 --checkpoint-interval 0.5 --inject-crash 1
	PYTHONPATH=src $(PYTHON) -m repro sweep status --run-dir results/sweep_smoke
	PYTHONPATH=src $(PYTHON) -m repro sweep aggregate --run-dir results/sweep_smoke \
		--metric events_processed --by nodes

live-smoke:  # 8 live nodes over real TCP for ~10s; >=1 delivery, 0 evictions
	PYTHONPATH=src $(PYTHON) -m repro live demo --nodes 8 --duration 10 --check

chaos-smoke:  # seeded crash-restart + partition on a 6-node live cluster, invariant-checked
	PYTHONPATH=src $(PYTHON) -m repro chaos run --substrate live --plan smoke \
		--nodes 6 --horizon 15 --seed 0 --check

campaign-smoke:  # 2 strategies x 2 fault plans x 1 loss point, pool + injected crash
	rm -rf results/campaign_smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign run --run-dir results/campaign_smoke \
		--spec smoke --workers 2 --inject-crash 1
	PYTHONPATH=src $(PYTHON) -m repro campaign report --run-dir results/campaign_smoke --check

coalition-smoke:  # 2 coordinated strategies x {none, storm}, 2-member sub-f*G coalition, crash-resumed
	rm -rf results/coalition_smoke
	PYTHONPATH=src $(PYTHON) -m repro campaign run --run-dir results/coalition_smoke \
		--spec coalition-smoke --workers 2 --inject-crash 1
	PYTHONPATH=src $(PYTHON) -m repro campaign report --run-dir results/coalition_smoke --check

scale-smoke:  # sharded N=64 on 2 workers == monolithic; pool and serial fingerprints identical
	rm -rf results/scale_smoke
	PYTHONPATH=src $(PYTHON) -m repro scale run --run-dir results/scale_smoke/pool \
		--nodes 64 --shards 2 --seed 7 --horizon 2.0 --workers 2 --verify
	PYTHONPATH=src $(PYTHON) -c "import json; \
		from repro.orchestrator.sharded import load_sharded_manifest, run_sharded; \
		spec, _ = load_sharded_manifest('results/scale_smoke/pool'); \
		pool = [json.load(open('results/scale_smoke/pool/summary/shard%03d.json' % k))['fingerprint'] for k in range(spec.num_shards)]; \
		serial = run_sharded(spec, 'results/scale_smoke/serial', serial=True).shard_fingerprints; \
		assert pool == serial, (pool, serial); \
		print('pool/serial shard fingerprints identical:', ' '.join(f[:16] for f in pool))"
	rm -rf results/scale_smoke

pubsub-smoke:  # live pub/sub: dynamic join -> split, leaves -> dissolve, 0 evictions, delivery parity
	PYTHONPATH=src $(PYTHON) -m repro pubsub bench --nodes 6 --seed 0 --check

topo-smoke:  # wan-king on both substrates, invariant-checked, + lan==bare-star equivalence gate
	PYTHONPATH=src $(PYTHON) -m repro topo verify
	PYTHONPATH=src $(PYTHON) -m repro topo run --preset wan-king --substrate both \
		--nodes 6 --horizon 12 --seed 0 --check

report:
	$(PYTHON) -m repro report --output results/full_report.txt

ci:  # what .github/workflows/ci.yml runs
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(PYTHON) experiments/fault_sweep.py --smoke
	$(MAKE) sweep-smoke
	$(MAKE) live-smoke
	$(MAKE) chaos-smoke
	$(MAKE) campaign-smoke
	$(MAKE) coalition-smoke
	$(MAKE) scale-smoke
	$(MAKE) pubsub-smoke
	$(MAKE) topo-smoke
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_smoke.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_scale.py -q

examples:
	for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis results/*.txt test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
