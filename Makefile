# Convenience targets for the RAC reproduction.

PYTHON ?= python

.PHONY: install test bench bench-baseline ci-bench-smoke report examples ci clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

test-fast:
	$(PYTHON) -m pytest tests/ --ignore=tests/integration/test_throughput_validation.py

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py

bench-baseline:  # refresh BENCH_protocol.json without the pytest benches
	PYTHONPATH=src $(PYTHON) benchmarks/baseline.py

ci-bench-smoke:  # fail if seal/peel throughput regressed >2x vs BENCH_protocol.json
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_smoke.py -q

report:
	$(PYTHON) -m repro report --output results/full_report.txt

ci:  # what .github/workflows/ci.yml runs
	PYTHONPATH=src $(PYTHON) -m pytest -x -q
	$(PYTHON) experiments/fault_sweep.py --smoke
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_bench_smoke.py -q

examples:
	for ex in examples/*.py; do echo "=== $$ex ==="; $(PYTHON) $$ex || exit 1; done

clean:
	rm -rf .pytest_cache .hypothesis results/*.txt test_output.txt bench_output.txt
	find . -name __pycache__ -type d -exec rm -rf {} +
